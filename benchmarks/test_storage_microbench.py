"""Micro-benchmarks of the segmented partition-log storage layer.

The segmented :class:`PartitionLog` must beat the pre-segment flat-list
implementation (kept as :class:`repro.fabric._compat.flatlog.FlatPartitionLog`)
where the segmentation claims a complexity win, and must not regress the
append/fetch hot paths.  The headline number is retention: dropping aged
records from a 100k-record log is whole-segment pointer drops + one
boundary-segment scan instead of an O(n) walk over a full copy — the
acceptance floor is **≥ 5×**.

Results are written to ``BENCH_storage.json`` at the repo root so future
PRs can diff storage performance (the CI microbench job uploads it as a
build artifact next to ``benchmark-results.json``).
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.fabric._compat.flatlog import (
    FlatPartitionLog,
    flat_enforce_size_retention,
    flat_enforce_time_retention,
)
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord
from repro.fabric.retention import enforce_size_retention, enforce_time_retention

NUM_RECORDS = 100_000
BATCH = 500
# A 40-char string value serializes to 40 B; +24 B framing = 64 B on the wire.
EVENT_64B = "x" * 40

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"
RESULTS: dict = {"records": NUM_RECORDS, "event_bytes": 64}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write every benchmark's numbers to BENCH_storage.json on teardown."""
    yield
    BENCH_PATH.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")


def _fill(log, num_records=NUM_RECORDS):
    """Append ``num_records`` in 500-record batches; one batch per tick of
    a deterministic append-time clock so time retention has a clean cut."""
    for batch_index in range(num_records // BATCH):
        log.append_batch(
            [EventRecord(value=EVENT_64B) for _ in range(BATCH)],
            append_time=float(batch_index),
        )
    return log


def _best_of(fn, repeats=3):
    """Best-of-``repeats`` wall-clock seconds with GC paused in the window."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def test_append_throughput_not_regressed():
    """Packed batch adoption must put segmented append ahead of flat:
    ``append_batch`` packs each 500-record batch once and adopts it by
    reference (one chunk append + prefix sums instead of 500 ``StoredRecord``
    constructions).  Ratcheted to ≥ 1.1× after PR 6 measured 1.16×."""

    def append_segmented():
        _fill(PartitionLog("bench", 0))

    def append_flat():
        _fill(FlatPartitionLog("bench", 0))

    # Interleave the implementations (see the fetch bench below): both
    # sides sample the same runner state, so the best-of ratio reflects
    # the code rather than which side drew the throttled window.
    segmented_best = flat_best = float("inf")
    for _ in range(4):
        segmented_best = min(segmented_best, _best_of(append_segmented, repeats=1))
        flat_best = min(flat_best, _best_of(append_flat, repeats=1))
    segmented = NUM_RECORDS / segmented_best
    flat = NUM_RECORDS / flat_best
    RESULTS["append_batched"] = {
        "segmented_ev_s": round(segmented),
        "flat_ev_s": round(flat),
        "ratio": round(segmented / flat, 3),
    }
    RESULTS["append_batched"]["floor"] = 1.1
    print(f"\nBatched append: segmented {segmented:,.0f} ev/s, "
          f"flat {flat:,.0f} ev/s ({segmented / flat:.2f}x)")
    assert segmented >= 1.1 * flat


def test_fetch_throughput_not_regressed():
    """Paging through 100k records in 500-record fetches: lazy packed
    views (O(runs) assembly, no per-record materialization) must beat the
    flat log's list slices.  Floor 1.05× — re-based from 1.15 when the
    committed-isolation high-watermark bound check joined the fetch hot
    loop (both implementations now pay the same signature cost for
    parity): interleaved remeasurement puts the honest ratio at
    ~1.1–1.2× with ±0.15 run-to-run noise, so 1.15 sat inside the noise
    band.  (The 1.54× a sequential best-of once recorded was runner
    noise flattering the segmented side.)"""
    segmented_log = _fill(PartitionLog("bench", 0))
    flat_log = _fill(FlatPartitionLog("bench", 0))

    def page_through(log):
        def run():
            offset = 0
            end = log.log_end_offset
            while offset < end:
                records = log.fetch(offset, max_records=BATCH)
                offset = records[-1].offset + 1
        return run

    # The timed window is short (~1 ms per pass), so CPU-frequency /
    # contention noise dominates a sequential best-of: interleave the two
    # implementations and repeat more so both sides sample the same
    # machine state and the best pass reflects the code, not the runner.
    segmented_best = flat_best = float("inf")
    for _ in range(7):
        segmented_best = min(segmented_best, _best_of(page_through(segmented_log), repeats=1))
        flat_best = min(flat_best, _best_of(page_through(flat_log), repeats=1))
    segmented = NUM_RECORDS / segmented_best
    flat = NUM_RECORDS / flat_best
    RESULTS["fetch_paged"] = {
        "segmented_rec_s": round(segmented),
        "flat_rec_s": round(flat),
        "ratio": round(segmented / flat, 3),
    }
    RESULTS["fetch_paged"]["floor"] = 1.05
    print(f"\nPaged fetch: segmented {segmented:,.0f} rec/s, "
          f"flat {flat:,.0f} rec/s ({segmented / flat:.2f}x)")
    assert segmented >= 1.05 * flat


def test_time_retention_run_5x_faster():
    """The acceptance-criterion bench: expiring half of a 100k-record log
    must be ≥ 5× faster on segments (whole-segment drops + one boundary
    scan) than the flat walk-copy-and-slice.

    A pre-taken snapshot keeps the dropped records — and, for the
    segmented log, the dropped segments' packed-chunk containers — alive
    through the timed window: freeing 50k records' worth of objects costs
    both implementations comparable interpreter work, and with it inside
    the window it drowns the storage-layer difference the bench exists to
    measure."""
    half_cutoff = NUM_RECORDS // BATCH / 2.0  # append-time ticks

    segmented_times = []
    flat_times = []
    keepalive = []
    for _ in range(3):
        segmented_log = _fill(PartitionLog("bench", 0))
        flat_log = _fill(FlatPartitionLog("bench", 0))
        keepalive.append(
            (
                segmented_log.read_all(),
                tuple(segmented_log._segments),
                flat_log.read_all(),
            )
        )
        now = float(NUM_RECORDS // BATCH)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            removed_segmented = enforce_time_retention(
                segmented_log, retention_seconds=now - half_cutoff, now=now
            )
            segmented_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            removed_flat = flat_enforce_time_retention(
                flat_log, retention_seconds=now - half_cutoff, now=now
            )
            flat_times.append(time.perf_counter() - start)
        finally:
            gc.enable()
        assert removed_segmented == removed_flat == NUM_RECORDS // 2
        assert segmented_log.log_start_offset == flat_log.log_start_offset

    segmented, flat = min(segmented_times), min(flat_times)
    speedup = flat / segmented
    RESULTS["time_retention_drop_half"] = {
        "segmented_s": round(segmented, 6),
        "flat_s": round(flat, 6),
        "speedup": round(speedup, 1),
    }
    print(f"\nTime retention (drop 50k of 100k): segmented {segmented * 1e3:.3f} ms, "
          f"flat {flat * 1e3:.3f} ms ({speedup:.0f}x)")
    assert speedup >= 5.0


def test_steady_state_retention_noop_5x_faster():
    """The common production case: the retention pass finds nothing (or
    almost nothing) to drop.  Flat still copies and walks every retained
    record; segments answer from cached time bounds."""
    segmented_log = _fill(PartitionLog("bench", 0))
    flat_log = _fill(FlatPartitionLog("bench", 0))
    now = float(NUM_RECORDS // BATCH)
    retention = now + 1_000.0  # nothing is old enough

    segmented = _best_of(
        lambda: enforce_time_retention(segmented_log, retention, now=now)
    )
    flat = _best_of(
        lambda: flat_enforce_time_retention(flat_log, retention, now=now)
    )
    assert len(segmented_log) == len(flat_log) == NUM_RECORDS
    speedup = flat / segmented
    RESULTS["time_retention_noop"] = {
        "segmented_s": round(segmented, 6),
        "flat_s": round(flat, 6),
        "speedup": round(speedup, 1),
    }
    print(f"\nTime retention (no-op pass over 100k): segmented {segmented * 1e6:.1f} µs, "
          f"flat {flat * 1e3:.3f} ms ({speedup:.0f}x)")
    assert speedup >= 5.0


def test_size_retention_and_accounting_5x_faster():
    """Size retention sums cached per-segment counters instead of
    re-summing every record: the cutoff search plus truncation at 100k
    records must also clear 5×."""
    target_bytes = (NUM_RECORDS // 2) * 64  # keep roughly half

    segmented_times = []
    flat_times = []
    removed = []
    keepalive = []
    for _ in range(3):
        segmented_log = _fill(PartitionLog("bench", 0))
        flat_log = _fill(FlatPartitionLog("bench", 0))
        # Keep dropped records (and the segmented log's packed chunks)
        # alive: both sides pay comparable free() costs, so the timed
        # window isolates the retention machinery (see the time-retention
        # bench above).
        keepalive.append(
            (
                segmented_log.read_all(),
                tuple(segmented_log._segments),
                flat_log.read_all(),
            )
        )
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            removed_segmented = enforce_size_retention(segmented_log, target_bytes)
            segmented_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            removed_flat = flat_enforce_size_retention(flat_log, target_bytes)
            flat_times.append(time.perf_counter() - start)
        finally:
            gc.enable()
        assert removed_segmented == removed_flat
        removed.append(removed_segmented)

    segmented, flat = min(segmented_times), min(flat_times)
    speedup = flat / segmented
    RESULTS["size_retention_drop_half"] = {
        "segmented_s": round(segmented, 6),
        "flat_s": round(flat, 6),
        "removed_records": removed[0],
        "speedup": round(speedup, 1),
    }
    print(f"\nSize retention (drop ~50k of 100k): segmented {segmented * 1e3:.3f} ms, "
          f"flat {flat * 1e3:.3f} ms ({speedup:.0f}x)")
    assert speedup >= 5.0


def test_mirror_packed_forwarding_not_regressed():
    """Cross-cluster mirroring forwards packed chunks by reference (a
    header overlay carries provenance; nothing is re-encoded).  The
    baseline rebuilds each ``EventRecord`` with merged provenance headers
    — the pre-packed MirrorMaker data path.  Ratcheted to ≥ 3.0× after
    PR 6 measured 5.4×."""
    from repro.fabric.cluster import FabricCluster
    from repro.fabric.mirrormaker import MirrorMaker
    from repro.fabric.topic import TopicConfig

    num_partitions, per_partition = 4, 2_500
    total = num_partitions * per_partition

    def build_source(name):
        source = FabricCluster(num_brokers=1, name=name)
        source.admin().create_topic(
            "mirror-bench",
            TopicConfig(num_partitions=num_partitions, replication_factor=1),
        )
        for p in range(num_partitions):
            for start in range(0, per_partition, BATCH):
                source.append_batch(
                    "mirror-bench",
                    p,
                    [EventRecord(value=EVENT_64B) for _ in range(BATCH)],
                )
        return source

    def build_destination(name):
        destination = FabricCluster(num_brokers=1, name=name)
        destination.admin().create_topic(
            "mirror-bench",
            TopicConfig(num_partitions=num_partitions, replication_factor=1),
        )
        return destination

    def packed_run():
        source = build_source("bench-src-packed")
        mirror = MirrorMaker(source, build_destination("bench-dst-packed"))

        def run():
            assert mirror.sync_topic("mirror-bench").records_mirrored == total
        return run

    def per_record_run():
        source = build_source("bench-src-rec")
        destination = build_destination("bench-dst-rec")

        def run():
            mirrored_total = 0
            for _, partition in source.partitions_for("mirror-bench"):
                records = source.fetch(
                    "mirror-bench", partition, 0,
                    max_records=per_partition, max_bytes=None,
                )
                base_offset = records[0].offset
                rebuilt = [
                    EventRecord(
                        value=stored.record.value,
                        key=stored.record.key,
                        headers={
                            **dict(stored.record.headers),
                            "mirror.source.cluster": source.name,
                            "mirror.source.offset": str(stored.offset),
                            "mirror.batch.base_offset": str(base_offset),
                        },
                        timestamp=stored.record.timestamp,
                    )
                    for stored in records
                ]
                destination.append_batch(
                    "mirror-bench", partition, rebuilt, acks=1
                )
                mirrored_total += len(rebuilt)
            assert mirrored_total == total
        return run

    # Each timed run mirrors a fresh source into a fresh destination, so
    # build (untimed) inside the repeat loop rather than using _best_of.
    def best_rate(make_run, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            run = make_run()
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            finally:
                gc.enable()
        return total / best

    packed = best_rate(packed_run)
    per_record = best_rate(per_record_run)
    RESULTS["mirror_batched"] = {
        "packed_rec_s": round(packed),
        "per_record_rec_s": round(per_record),
        "ratio": round(packed / per_record, 3),
        "floor": 3.0,
    }
    print(f"\nMirror sync: packed forwarding {packed:,.0f} rec/s, "
          f"per-record re-encode {per_record:,.0f} rec/s "
          f"({packed / per_record:.2f}x)")
    assert packed >= 3.0 * per_record
