"""Table III — baseline performance and scalability benchmarking results.

Regenerates every row of Table III (experiments #1–#9) from the calibrated
performance model and checks the relationships the paper's text highlights
(who wins, by roughly what factor).
"""

import pytest

from repro.bench.report import format_table3
from repro.simulation.evaluation import TABLE3_EXPERIMENTS, run_full_table3

#: Paper values (local producer throughput, events/s) for a sanity band.
PAPER_LOCAL_PRODUCER = {
    1: 4_289_000, 2: 195_000, 3: 161_000, 4: 65_000, 5: 43_000,
    6: 202_000, 7: 238_000, 8: 319_000, 9: 246_000,
}
PAPER_REMOTE_PRODUCER = {
    1: 4_202_000, 2: 174_000, 3: 143_000, 4: 65_000, 5: 39_000,
    6: 179_000, 7: 184_000, 8: 303_000, 9: 235_000,
}


def test_table3_all_rows(benchmark):
    rows = benchmark(run_full_table3)
    print("\n" + format_table3(rows))
    by_index = {row.config.index: row for row in rows}
    assert len(rows) == len(TABLE3_EXPERIMENTS) == 9
    for index, paper_value in PAPER_LOCAL_PRODUCER.items():
        assert by_index[index].local.producer_throughput == pytest.approx(
            paper_value, rel=0.30
        ), f"experiment {index} local producer throughput"
    for index, paper_value in PAPER_REMOTE_PRODUCER.items():
        assert by_index[index].remote.producer_throughput == pytest.approx(
            paper_value, rel=0.30
        ), f"experiment {index} remote producer throughput"
    # Headline claim: >4.2M produced and >9.6M consumed per second (32 B).
    assert by_index[1].local.producer_throughput > 4.2e6
    assert by_index[1].local.consumer_throughput > 9.6e6
    # Read throughput roughly 2x write throughput for 1 KB and 4 KB events.
    for index in (2, 5, 6):
        row = by_index[index]
        assert 1.5 <= row.local.consumer_throughput / row.local.producer_throughput <= 2.6
    # acks=all collapses throughput roughly 3x and adds ~100 ms latency.
    assert by_index[2].local.producer_throughput / by_index[4].local.producer_throughput > 2.5
    assert by_index[4].local.median_latency_ms - by_index[2].local.median_latency_ms > 80
    # Scale-out beats scale-up beats baseline for writes.
    assert (
        by_index[8].local.producer_throughput
        > by_index[7].local.producer_throughput
        > by_index[6].local.producer_throughput
    )
    # Raising RF from 2 to 4 on scale-out costs writes but not reads.
    assert by_index[9].local.producer_throughput < by_index[8].local.producer_throughput
    assert by_index[9].local.consumer_throughput == pytest.approx(
        by_index[8].local.consumer_throughput, rel=0.02
    )


@pytest.mark.parametrize("config", TABLE3_EXPERIMENTS, ids=lambda c: f"exp{c.index}")
def test_table3_single_experiment(benchmark, config):
    """Each experiment individually (useful for comparing timings per row)."""
    from repro.simulation.evaluation import run_table3_experiment

    row = benchmark(run_table3_experiment, config)
    assert row.local.producer_throughput > 0
    if config.acks != "all":
        # With acks=all the WAN RTT overlaps the replication wait, so the
        # remote median is NOT higher than the local one (also true in the
        # paper: 138 ms remote vs. 141 ms local).
        assert row.remote.median_latency_ms > row.local.median_latency_ms
