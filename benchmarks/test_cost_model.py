"""Section VII-C — cloud cost model.

The paper's example: 10,000 events/hour for each of 10 resources invokes
2.4 M Lambdas per day, costing about $24/day with 5 s / 4 KB triggers; the
smallest MSK cluster costs about $70/month; aggregation cuts trigger costs
by orders of magnitude.
"""

import pytest

from repro.bench.costs import TriggerCostModel, scheduling_example_daily_cost


def test_cost_model_scheduling_example(benchmark):
    result = benchmark(scheduling_example_daily_cost)
    model = TriggerCostModel()
    print("\nSection VII-C — cost model")
    print(f"  invocations/day:   {result['invocations_per_day']:,.0f}")
    print(f"  lambda cost/day:   ${result['lambda_cost_usd']:.2f}")
    print(f"  egress cost/day:   ${result['egress_cost_usd']:.2f}")
    print(f"  total cost/day:    ${result['total_cost_usd']:.2f}")
    print(f"  MSK minimum/month: ${model.monthly_minimum_broker_cost():.2f}")
    # 10,000 x 10 x 24 = 2.4M invocations per day, ~$24/day for Lambda.
    assert result["invocations_per_day"] == pytest.approx(2.4e6)
    assert result["lambda_cost_usd"] == pytest.approx(24.0, rel=0.05)
    # Egress is negligible in comparison.
    assert result["egress_cost_usd"] < 0.05 * result["lambda_cost_usd"]
    # The minimum monthly MSK cost is about $70.
    assert model.monthly_minimum_broker_cost() == pytest.approx(70.0, rel=0.1)


def test_cost_model_aggregation_mitigation(benchmark):
    aggregated = benchmark(scheduling_example_daily_cost, aggregation_factor=100.0)
    raw = scheduling_example_daily_cost()
    print(f"\n  raw trigger cost/day:        ${raw['total_cost_usd']:.2f}")
    print(f"  aggregated (100x) cost/day:  ${aggregated['total_cost_usd']:.4f}")
    # Aggregating events at the edge reduces trigger costs by orders of magnitude.
    assert aggregated["total_cost_usd"] < raw["total_cost_usd"] / 50.0
