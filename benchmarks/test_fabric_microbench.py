"""Functional micro-benchmarks of the in-process fabric itself.

These complement the calibrated model benches: they measure the actual
Python implementation's produce/consume rates through the benchmarking
operator (Section V-B), and the trigger path end to end.  Absolute numbers
are far below the paper's MSK cluster (this is a single-process pure-Python
broker), but the relative effects — acks cost, read-vs-write asymmetry —
are visible here too.
"""

import pytest

from repro.bench.operator import BenchmarkOperator
from repro.core import OctopusDeployment
from repro.faas.function import FunctionDefinition

NUM_EVENTS = 2000


@pytest.fixture(scope="module")
def operator():
    op = BenchmarkOperator(num_brokers=2)
    op.provision_topic("bench-acks0", partitions=2)
    op.provision_topic("bench-acks1", partitions=2)
    op.provision_topic("bench-acksall", partitions=2)
    return op


def test_fabric_produce_consume_acks0(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acks0", num_events=NUM_EVENTS, acks=0),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=0: produce {result.produce_throughput:,.0f} ev/s, "
          f"consume {result.consume_throughput:,.0f} ev/s, "
          f"median latency {result.produce_latency.median_ms:.3f} ms")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0
    assert result.consume_throughput > result.produce_throughput * 0.5


def test_fabric_produce_consume_acks_all(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acksall", num_events=NUM_EVENTS, acks="all"),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=all: produce {result.produce_throughput:,.0f} ev/s")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0


def run_trigger_path(deployment, client, n_events):
    processed = []
    deployment.triggers.register_function(
        FunctionDefinition(name="count", handler=lambda e, c: processed.extend(e["records"]))
    )
    client.create_trigger("trigger-bench", "count", batch_size=500)
    producer = client.producer()
    for i in range(n_events):
        producer.send("trigger-bench", {"event_type": "created", "i": i})
    deployment.run_triggers()
    return len(processed)


def test_trigger_path_end_to_end(benchmark):
    deployment = OctopusDeployment.create()
    client = deployment.client("bench", "anl.gov")
    client.register_topic("trigger-bench", {"num_partitions": 4})
    count = benchmark.pedantic(
        run_trigger_path, args=(deployment, client, 1000), rounds=1, iterations=1
    )
    print(f"\nTrigger path processed {count} events end to end")
    assert count == 1000
