"""Functional micro-benchmarks of the in-process fabric itself.

These complement the calibrated model benches: they measure the actual
Python implementation's produce/consume rates through the benchmarking
operator (Section V-B), and the trigger path end to end.  Absolute numbers
are far below the paper's MSK cluster (this is a single-process pure-Python
broker), but the relative effects — acks cost, read-vs-write asymmetry —
are visible here too.
"""

import gc
import time

import pytest

from repro.bench.operator import BenchmarkOperator
from repro.core import OctopusDeployment
from repro.faas.function import FunctionDefinition
from repro.fabric import (
    EventRecord,
    FabricCluster,
    FabricProducer,
    ProducerConfig,
    TopicConfig,
)
from repro.fabric.mirrormaker import MirrorMaker

NUM_EVENTS = 2000


@pytest.fixture(scope="module")
def operator():
    op = BenchmarkOperator(num_brokers=2)
    op.provision_topic("bench-acks0", partitions=2)
    op.provision_topic("bench-acks1", partitions=2)
    op.provision_topic("bench-acksall", partitions=2)
    return op


def test_fabric_produce_consume_acks0(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acks0", num_events=NUM_EVENTS, acks=0),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=0: produce {result.produce_throughput:,.0f} ev/s, "
          f"consume {result.consume_throughput:,.0f} ev/s, "
          f"median latency {result.produce_latency.median_ms:.3f} ms")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0
    assert result.consume_throughput > result.produce_throughput * 0.5


def test_fabric_produce_consume_acks_all(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acksall", num_events=NUM_EVENTS, acks="all"),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=all: produce {result.produce_throughput:,.0f} ev/s")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0


# A 40-char string value serializes to 40 B; +24 B framing = 64 B on the wire.
EVENT_64B = "x" * 40


def _timed_throughput(produce, n, repeats=3):
    """Best-of-``repeats`` events/second, with GC paused during the window
    so collections triggered by the rest of the suite's heap don't land
    inside one timing run.  Best-of-3 keeps a transient load spike on a
    shared machine from sinking one arm of a ratio assertion."""
    best = 0.0
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            produce(n)
            best = max(best, n / (time.perf_counter() - start))
        finally:
            gc.enable()
    return best


def _produce_per_record(cluster, topic, n):
    producer = FabricProducer(cluster, ProducerConfig(acks=1))
    for _ in range(n):
        producer.send(topic, EVENT_64B)


def _produce_batched(cluster, topic, n):
    producer = FabricProducer(cluster, ProducerConfig(acks=1))
    for _ in range(n):
        try:
            producer.buffer(topic, EVENT_64B)
        except BufferError:
            producer.flush()
            producer.buffer(topic, EVENT_64B)
    producer.flush()


def test_batched_produce_beats_per_record_3x():
    """The batched data plane must deliver ≥ 3× the per-record produce
    throughput for 64-byte events (one metadata/ACL/leader/replication
    round per batch instead of per record)."""
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic(
        "bench-batching", TopicConfig(num_partitions=2, replication_factor=2)
    )
    per_record = _timed_throughput(
        lambda n: _produce_per_record(cluster, "bench-batching", n), NUM_EVENTS
    )
    batched = _timed_throughput(
        lambda n: _produce_batched(cluster, "bench-batching", n), NUM_EVENTS
    )
    print(f"\nPer-record produce: {per_record:,.0f} ev/s; "
          f"batched produce: {batched:,.0f} ev/s "
          f"({batched / per_record:.1f}x)")
    # Three timed repeats per side, nothing dropped on either path.
    assert sum(cluster.end_offsets("bench-batching").values()) == 6 * NUM_EVENTS
    assert batched >= 3 * per_record


def test_commit_group_beats_per_partition_commits_2x():
    """Batched group commits must deliver ≥ 2× the per-partition commit
    round rate for a 16-partition group: one generation validation and one
    offset-store lock acquisition per round instead of one of each per
    partition (the pre-`commit_group` consumer protocol)."""
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic("bench-commit", TopicConfig(num_partitions=16))
    partitions = cluster.partitions_for("bench-commit")
    member, generation, _ = cluster.groups.join(
        "bench-commits", "bench", ["bench-commit"], partitions
    )
    store = cluster.offsets
    rounds = 2000

    def per_partition(n):
        for i in range(n):
            for topic, partition in partitions:
                cluster.groups.validate_generation("bench-commits", member, generation)
                store.commit("bench-commits", topic, partition, i + 1)

    def grouped(n):
        for i in range(n):
            cluster.commit_group(
                "bench-commits",
                [(tp, i + 1) for tp in partitions],
                generation=generation,
                member_id=member,
            )

    per = _timed_throughput(per_partition, rounds)
    batched = _timed_throughput(grouped, rounds)
    print(f"\nPer-partition commits: {per:,.0f} rounds/s; "
          f"commit_group: {batched:,.0f} rounds/s ({batched / per:.1f}x)")
    assert store.group_offsets("bench-commits") == {tp: rounds for tp in partitions}
    assert batched >= 2 * per


def test_fetch_many_consume_beats_per_partition_2x():
    """The fetch-session data plane must deliver ≥ 1.4× the per-partition
    consume throughput when an assignment spans many partitions (one
    authorization/topic/leader resolution per session pass instead of one
    of each per partition).

    The floor was 2× before packed fetch views: per-partition ``fetch``
    then materialized a record list per call, which the session path
    avoided.  Both arms now return lazy views, so the baseline itself got
    faster and the session's remaining edge is the amortized
    metadata/authorization work alone.
    """
    num_partitions, records_per_partition, rounds = 64, 4, 100
    cluster = FabricCluster(num_brokers=1)
    cluster.admin().create_topic(
        "bench-fetch",
        TopicConfig(num_partitions=num_partitions, replication_factor=1),
    )
    for p in range(num_partitions):
        cluster.append_batch(
            "bench-fetch",
            p,
            [EventRecord(value=EVENT_64B) for _ in range(records_per_partition)],
        )
    total = num_partitions * records_per_partition * rounds

    def per_partition(n):
        served = 0
        for _ in range(rounds):
            for p in range(num_partitions):
                served += len(cluster.fetch("bench-fetch", p, 0, max_records=500))
        assert served == n

    session = cluster.fetch_session()
    session.set_assignment([("bench-fetch", p) for p in range(num_partitions)])
    positions = {("bench-fetch", p): 0 for p in range(num_partitions)}

    def sessioned(n):
        served = 0
        for _ in range(rounds):
            batches = session.fetch_assignment(positions, max_records=n)
            served += sum(len(r) for r in batches.values())
        assert served == n

    baseline = _timed_throughput(per_partition, total)
    batched = _timed_throughput(sessioned, total)
    print(f"\nPer-partition fetch: {baseline:,.0f} rec/s; "
          f"fetch-session consume: {batched:,.0f} rec/s "
          f"({batched / baseline:.1f}x)")
    assert batched >= 1.4 * baseline


def _mirror_source(num_partitions, records_per_partition):
    source = FabricCluster(num_brokers=1, name="bench-src")
    source.admin().create_topic(
        "mirror-bench",
        TopicConfig(num_partitions=num_partitions, replication_factor=1),
    )
    for p in range(num_partitions):
        source.append_batch(
            "mirror-bench",
            p,
            [EventRecord(value=EVENT_64B) for _ in range(records_per_partition)],
        )
    return source


def _mirror_per_record(source, destination):
    """The pre-fetch-session MirrorMaker shape: one fetch per partition,
    one ``append`` round trip per record."""
    mirrored = 0
    for _, partition in source.partitions_for("mirror-bench"):
        records = source.fetch("mirror-bench", partition, 0, max_records=10_000)
        for stored in records:
            copy = EventRecord(
                value=stored.record.value,
                key=stored.record.key,
                headers={
                    **dict(stored.record.headers),
                    "mirror.source.cluster": source.name,
                    "mirror.source.offset": str(stored.offset),
                },
                timestamp=stored.record.timestamp,
            )
            destination.append("mirror-bench", partition, copy, acks=1)
            mirrored += 1
    return mirrored


def _timed_mirror_rate(run_sync, n, repeats=3):
    """Best-of-``repeats`` mirrored records/second; cluster setup happens
    outside the timed window, GC paused inside it (as `_timed_throughput`)."""
    best = 0.0
    for _ in range(repeats):
        run = run_sync()  # fresh source + destination per repeat
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            assert run() == n
            best = max(best, n / (time.perf_counter() - start))
        finally:
            gc.enable()
    return best


def test_batched_mirror_sync_beats_per_record_2x():
    """Routing MirrorMaker through ``fetch_many`` + ``append_batch`` must
    mirror records ≥ 2× faster than the per-record baseline."""
    num_partitions, records_per_partition = 4, 500
    total = num_partitions * records_per_partition

    def per_record_setup():
        source = _mirror_source(num_partitions, records_per_partition)
        destination = FabricCluster(num_brokers=1, name="bench-dst-a")
        destination.admin().create_topic(
            "mirror-bench",
            TopicConfig(num_partitions=num_partitions, replication_factor=1),
        )
        return lambda: _mirror_per_record(source, destination)

    def batched_setup():
        source = _mirror_source(num_partitions, records_per_partition)
        destination = FabricCluster(num_brokers=1, name="bench-dst-b")
        # Pre-create the destination topic, as the per-record arm does, so
        # neither timed window includes topic creation.
        destination.admin().create_topic(
            "mirror-bench",
            TopicConfig(num_partitions=num_partitions, replication_factor=1),
        )
        mirror = MirrorMaker(source, destination)
        return lambda: mirror.sync_topic("mirror-bench").records_mirrored

    baseline = _timed_mirror_rate(per_record_setup, total)
    fast = _timed_mirror_rate(batched_setup, total)
    print(f"\nPer-record mirror: {baseline:,.0f} rec/s; "
          f"batched mirror sync: {fast:,.0f} rec/s "
          f"({fast / baseline:.1f}x)")
    assert fast >= 2 * baseline


def run_trigger_path(deployment, client, n_events):
    processed = []
    deployment.triggers.register_function(
        FunctionDefinition(name="count", handler=lambda e, c: processed.extend(e["records"]))
    )
    client.create_trigger("trigger-bench", "count", batch_size=500)
    producer = client.producer()
    for i in range(n_events):
        producer.send("trigger-bench", {"event_type": "created", "i": i})
    deployment.run_triggers()
    return len(processed)


def test_trigger_path_end_to_end(benchmark):
    deployment = OctopusDeployment.create()
    client = deployment.client("bench", "anl.gov")
    client.register_topic("trigger-bench", {"num_partitions": 4})
    count = benchmark.pedantic(
        run_trigger_path, args=(deployment, client, 1000), rounds=1, iterations=1
    )
    print(f"\nTrigger path processed {count} events end to end")
    assert count == 1000
