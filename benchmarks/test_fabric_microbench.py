"""Functional micro-benchmarks of the in-process fabric itself.

These complement the calibrated model benches: they measure the actual
Python implementation's produce/consume rates through the benchmarking
operator (Section V-B), and the trigger path end to end.  Absolute numbers
are far below the paper's MSK cluster (this is a single-process pure-Python
broker), but the relative effects — acks cost, read-vs-write asymmetry —
are visible here too.
"""

import gc
import time

import pytest

from repro.bench.operator import BenchmarkOperator
from repro.core import OctopusDeployment
from repro.faas.function import FunctionDefinition
from repro.fabric import FabricCluster, FabricProducer, ProducerConfig, TopicConfig

NUM_EVENTS = 2000


@pytest.fixture(scope="module")
def operator():
    op = BenchmarkOperator(num_brokers=2)
    op.provision_topic("bench-acks0", partitions=2)
    op.provision_topic("bench-acks1", partitions=2)
    op.provision_topic("bench-acksall", partitions=2)
    return op


def test_fabric_produce_consume_acks0(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acks0", num_events=NUM_EVENTS, acks=0),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=0: produce {result.produce_throughput:,.0f} ev/s, "
          f"consume {result.consume_throughput:,.0f} ev/s, "
          f"median latency {result.produce_latency.median_ms:.3f} ms")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0
    assert result.consume_throughput > result.produce_throughput * 0.5


def test_fabric_produce_consume_acks_all(benchmark, operator):
    result = benchmark.pedantic(
        operator.run_round,
        kwargs=dict(topic="bench-acksall", num_events=NUM_EVENTS, acks="all"),
        rounds=1, iterations=1,
    )
    print(f"\nFunctional fabric, acks=all: produce {result.produce_throughput:,.0f} ev/s")
    assert result.events == NUM_EVENTS
    assert result.produce_throughput > 0


# A 40-char string value serializes to 40 B; +24 B framing = 64 B on the wire.
EVENT_64B = "x" * 40


def _timed_throughput(produce, n, repeats=2):
    """Best-of-``repeats`` events/second, with GC paused during the window
    so collections triggered by the rest of the suite's heap don't land
    inside one timing run."""
    best = 0.0
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            produce(n)
            best = max(best, n / (time.perf_counter() - start))
        finally:
            gc.enable()
    return best


def _produce_per_record(cluster, topic, n):
    producer = FabricProducer(cluster, ProducerConfig(acks=1))
    for _ in range(n):
        producer.send(topic, EVENT_64B)


def _produce_batched(cluster, topic, n):
    producer = FabricProducer(cluster, ProducerConfig(acks=1))
    for _ in range(n):
        try:
            producer.buffer(topic, EVENT_64B)
        except BufferError:
            producer.flush()
            producer.buffer(topic, EVENT_64B)
    producer.flush()


def test_batched_produce_beats_per_record_3x():
    """The batched data plane must deliver ≥ 3× the per-record produce
    throughput for 64-byte events (one metadata/ACL/leader/replication
    round per batch instead of per record)."""
    cluster = FabricCluster(num_brokers=2)
    cluster.create_topic(
        "bench-batching", TopicConfig(num_partitions=2, replication_factor=2)
    )
    per_record = _timed_throughput(
        lambda n: _produce_per_record(cluster, "bench-batching", n), NUM_EVENTS
    )
    batched = _timed_throughput(
        lambda n: _produce_batched(cluster, "bench-batching", n), NUM_EVENTS
    )
    print(f"\nPer-record produce: {per_record:,.0f} ev/s; "
          f"batched produce: {batched:,.0f} ev/s "
          f"({batched / per_record:.1f}x)")
    # Two timed repeats per side, nothing dropped on either path.
    assert sum(cluster.end_offsets("bench-batching").values()) == 4 * NUM_EVENTS
    assert batched >= 3 * per_record


def run_trigger_path(deployment, client, n_events):
    processed = []
    deployment.triggers.register_function(
        FunctionDefinition(name="count", handler=lambda e, c: processed.extend(e["records"]))
    )
    client.create_trigger("trigger-bench", "count", batch_size=500)
    producer = client.producer()
    for i in range(n_events):
        producer.send("trigger-bench", {"event_type": "created", "i": i})
    deployment.run_triggers()
    return len(processed)


def test_trigger_path_end_to_end(benchmark):
    deployment = OctopusDeployment.create()
    client = deployment.client("bench", "anl.gov")
    client.register_topic("trigger-bench", {"num_partitions": 4})
    count = benchmark.pedantic(
        run_trigger_path, args=(deployment, client, 1000), rounds=1, iterations=1
    )
    print(f"\nTrigger path processed {count} events end to end")
    assert count == 1000
