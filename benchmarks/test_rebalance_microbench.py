"""Micro-benchmarks of incremental cooperative rebalancing.

Eager range assignment is stop-the-world: every membership change revokes
the whole partition set (all members discard positions and prefetch state
and reacquire from scratch).  The cooperative sticky protocol must move
only the minimal delta — for a single join in an N-member group over P
partitions, at most ``ceil(P/N)`` partitions — while every retained
partition keeps serving records mid-rebalance.  The timings land in the
benchmark-results artifact next to the throughput benches.
"""

import math

from repro.fabric import (
    ConsumerConfig,
    EventRecord,
    FabricCluster,
    FabricConsumer,
    TopicConfig,
)

PARTITIONS = 16
MEMBERS = 4
RECORDS_PER_PARTITION = 50
TOPIC = "coop-bench"


def make_cluster():
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic(
        TOPIC, TopicConfig(num_partitions=PARTITIONS, replication_factor=2)
    )
    return cluster


def make_member(cluster):
    return FabricConsumer(
        cluster,
        [TOPIC],
        ConsumerConfig(group_id="coop-group", enable_auto_commit=False),
    )


def pump(consumers, rounds=4):
    """Stand-in for the members' poll loops: everyone adopts and acks."""
    for _ in range(rounds):
        for consumer in consumers:
            consumer.poll()


def fill(cluster):
    for partition in range(PARTITIONS):
        cluster.append_batch(
            TOPIC,
            partition,
            [EventRecord(value=f"p{partition}-r{i}") for i in range(RECORDS_PER_PARTITION)],
        )


def assert_exact_cover(cluster, consumers):
    assignments = [set(c.assignment()) for c in consumers]
    union = set().union(*assignments)
    assert union == set(cluster.partitions_for(TOPIC))
    assert sum(len(a) for a in assignments) == len(union)  # disjoint


def test_cooperative_join_revokes_at_most_quota(benchmark):
    """A single join in a 16-partition, 4-member group revokes <= 4
    partitions (vs all 16 under an eager stop-the-world reshuffle), and
    the survivors keep consuming every retained partition mid-rebalance."""
    cluster = make_cluster()
    survivors = [make_member(cluster) for _ in range(MEMBERS)]
    pump(survivors)
    for consumer in survivors:
        assert len(consumer.assignment()) == PARTITIONS // MEMBERS
    fill(cluster)
    revoked_before = sum(c.metrics.partitions_revoked for c in survivors)

    def join_and_settle():
        joiner = make_member(cluster)
        # While the revoke phase is in flight, every survivor's poll must
        # still deliver records from each partition it retains: retained
        # partitions never stall.
        for consumer in survivors:
            retained_before_poll = set(consumer.assignment())
            batches = consumer.poll()
            retained = set(consumer.assignment())
            assert retained <= retained_before_poll  # sticky: only sheds
            assert retained <= set(batches)  # every retained partition served
        pump(survivors + [joiner])
        return joiner

    joiner = benchmark.pedantic(join_and_settle, rounds=1, iterations=1)
    revoked = sum(c.metrics.partitions_revoked for c in survivors) - revoked_before
    quota = math.ceil(PARTITIONS / MEMBERS)
    print(
        f"\nCooperative join over {PARTITIONS} partitions, {MEMBERS} members: "
        f"{revoked} partitions revoked (eager range reshuffle revokes {PARTITIONS})"
    )
    assert 0 < revoked <= quota
    assert len(joiner.assignment()) >= PARTITIONS // (MEMBERS + 1)
    assert_exact_cover(cluster, survivors + [joiner])


def test_cooperative_leave_moves_only_the_leavers_partitions(benchmark):
    """A graceful leave frees only the leaver's partitions: the rebalance
    completes in a single phase and no survivor revokes anything."""
    cluster = make_cluster()
    members = [make_member(cluster) for _ in range(MEMBERS)]
    pump(members)
    fill(cluster)
    leaver, survivors = members[0], members[1:]
    freed = set(leaver.assignment())
    before = {id(c): set(c.assignment()) for c in survivors}
    revoked_before = sum(c.metrics.partitions_revoked for c in survivors)

    def leave_and_settle():
        leaver.close()
        pump(survivors)

    benchmark.pedantic(leave_and_settle, rounds=1, iterations=1)
    revoked = sum(c.metrics.partitions_revoked for c in survivors) - revoked_before
    moved = {
        tp
        for c in survivors
        for tp in set(c.assignment()) - before[id(c)]
    }
    print(
        f"\nCooperative leave: {len(moved)} partitions moved "
        f"(the leaver's {len(freed)}), {revoked} revoked from survivors"
    )
    assert revoked == 0
    assert moved == freed  # exactly the leaver's partitions re-stick
    assert len(moved) <= math.ceil(PARTITIONS / MEMBERS)
    for c in survivors:
        assert before[id(c)] <= set(c.assignment())
    assert_exact_cover(cluster, survivors)
