"""Table II — testbed cluster configurations.

Builds each cluster configuration as an actual fabric cluster plus its
capacity model, and prints the table (brokers, type, vCPUs, memory)
together with the modelled 1 KB write capacity of each configuration.
"""

from repro.bench.configs import CLUSTERS
from repro.fabric.cluster import FabricCluster
from repro.simulation.cluster_model import ClusterCapacityModel


def build_all_clusters():
    built = {}
    for name, spec in CLUSTERS.items():
        cluster = FabricCluster(
            num_brokers=spec.num_brokers,
            instance_type=spec.instance_type,
            vcpus_per_broker=spec.vcpus_per_broker,
            memory_gb_per_broker=spec.memory_gb_per_broker,
            name=name,
        )
        capacity = ClusterCapacityModel(spec).produce_capacity(
            event_size_bytes=1024, partitions=4
        )
        built[name] = (cluster.admin().describe_cluster(), spec.describe(), capacity)
    return built


def test_table2_cluster_configurations(benchmark):
    built = benchmark(build_all_clusters)
    print("\nTable II — testbed cluster configurations")
    print(f"{'Name':>10} {'Brokers':>8} {'Type':>18} {'vCPU':>5} {'Mem':>6} {'1KB write cap':>14}")
    for name, (cluster_info, spec_info, capacity) in built.items():
        print(f"{name:>10} {spec_info['num_brokers']:>8} {spec_info['broker_type']:>18} "
              f"{spec_info['vcpus_per_broker']:>5} {spec_info['memory_per_broker_gb']:>4}GB "
              f"{capacity / 1e3:>11.0f} K/s")
    assert built["baseline"][1]["num_brokers"] == 2
    assert built["scale-up"][1]["vcpus_per_broker"] == 4
    assert built["scale-out"][1]["num_brokers"] == 4
    # Both scaled clusters beat the baseline; scale-out beats scale-up.
    assert built["scale-out"][2] > built["scale-up"][2] > built["baseline"][2]
