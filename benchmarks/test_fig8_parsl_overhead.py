"""Figure 8 — Parsl workflow monitoring overhead: HTEX vs. Octopus.

128 tasks across eight nodes, 1–64 workers, task durations 0 / 10 / 100 ms.
The asynchronous overhead per event decreases as the number of workers
(and thus events) increases, and the Octopus monitor stays below the
HTEX database monitor at every point.
"""

from repro.apps.workflow import run_monitoring_overhead_experiment

WORKER_COUNTS = (1, 2, 4, 8, 16, 32, 64)
DURATIONS = (0.0, 0.010, 0.100)


def test_figure8_monitoring_overhead(benchmark):
    results = benchmark(
        run_monitoring_overhead_experiment,
        worker_counts=WORKER_COUNTS,
        task_durations_seconds=DURATIONS,
    )
    print("\nFigure 8 — async monitoring overhead per event (ms)")
    for duration in DURATIONS:
        label = "noop" if duration == 0.0 else f"sleep{int(duration * 1000)}ms"
        print(f"  {label}:")
        print(f"    {'workers':>8} {'HTEX':>10} {'Octopus':>10}")
        for htex_point, octo_point in zip(results["HTEX"][duration],
                                          results["Octopus"][duration]):
            print(f"    {htex_point['workers']:>8} "
                  f"{htex_point['overhead_per_event_ms']:>10.2f} "
                  f"{octo_point['overhead_per_event_ms']:>10.2f}")
    for duration in DURATIONS:
        htex = [p["overhead_per_event_ms"] for p in results["HTEX"][duration]]
        octopus = [p["overhead_per_event_ms"] for p in results["Octopus"][duration]]
        # Overhead per event decreases with the number of workers.
        assert htex[0] > htex[-1]
        assert octopus[0] > octopus[-1]
        # Octopus stays below HTEX at every worker count.
        assert all(o < h for o, h in zip(octopus, htex))
        # More workers -> more events generated.
        events = [p["events"] for p in results["Octopus"][duration]]
        assert events[-1] > events[0]
