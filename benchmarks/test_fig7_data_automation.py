"""Figure 7 — Octopus activity for the scientific data automation use case.

Events accumulate in the FS-monitor topic as an instrument writes files;
trigger invocations (which start Globus transfers) drain the queue within
about 150 seconds with single-digit concurrency.  Two views are produced:
the time series from the scaling simulator (the figure), plus a functional
end-to-end run of the actual pipeline that counts replicated files.
"""

from repro.apps.data_automation import DataAutomationPipeline
from repro.bench.report import format_scaling_series
from repro.core import OctopusDeployment
from repro.faas.scaling import ScalingPolicy, TriggerScalingSimulator


def run_figure7_timeseries():
    """FS events stream in over ~60 s; each transfer trigger takes ~15 s."""
    simulator = TriggerScalingSimulator(
        num_tasks=0,
        task_duration_seconds=15.0,
        partitions=8,
        batch_size=1,
        arrival_fn=lambda t: 2 if t <= 60.0 else 0,
        policy=ScalingPolicy(evaluation_interval_seconds=15.0, initial_concurrency=1,
                             max_concurrency=8),
    )
    return simulator, simulator.run(max_seconds=400.0)


def run_functional_pipeline():
    deployment = OctopusDeployment.create()
    client = deployment.client("beamline", "anl.gov")
    pipeline = DataAutomationPipeline(deployment, client, sites=["fs1", "fs2"])
    pipeline.ingest_instrument_output("fs1", "/scan-2024-06", 50)
    summary = pipeline.synchronize()
    return pipeline, summary


def test_figure7_trigger_activity_timeseries(benchmark):
    simulator, samples = benchmark(run_figure7_timeseries)
    print("\n" + format_scaling_series(
        "Figure 7 — data-automation trigger activity", samples, stride=15
    ))
    # Queue builds up to tens of events then drains within the 150-400 s window.
    assert max(s.queue_depth for s in samples) >= 20
    assert simulator.peak_concurrency(samples) <= 8
    assert simulator.peak_concurrency(samples) >= 4
    assert samples[-1].queue_depth == 0
    assert 120.0 <= simulator.completion_time(samples) <= 400.0


def test_figure7_functional_pipeline(benchmark):
    pipeline, summary = benchmark(run_functional_pipeline)
    report = pipeline.reduction_report()["fs1"]
    print("\nFigure 7 companion — functional data-automation pipeline")
    print(f"  raw FS events:        {report['raw_events']}")
    print(f"  forwarded to cloud:   {report['forwarded']}")
    print(f"  transfers submitted:  {summary['transfers_submitted']}")
    print(f"  files replicated:     {summary['files_copied']}")
    assert summary["files_copied"] == 50
    assert report["reduction_factor"] >= 2.0
    assert pipeline.file_inventory() == {"fs1": 50, "fs2": 50}
