"""Section V-D (in-text) — trigger throughput vs. partitions and event size.

With a single partition, trigger consumers reach about 22 K / 7 K / 2 K
events/s for 32 B / 1 KB / 4 KB events; with 8 partitions roughly six
times faster (~147 K / 39 K / 12 K events/s).
"""

import pytest

from repro.simulation.evaluation import run_trigger_throughput

PAPER = {
    (1, 32): 22_000, (1, 1024): 7_000, (1, 4096): 2_000,
    (8, 32): 147_000, (8, 1024): 39_000, (8, 4096): 12_000,
}


def test_trigger_throughput_vs_partitions_and_size(benchmark):
    points = benchmark(run_trigger_throughput)
    measured = {(p.partitions, p.event_size_bytes): p.events_per_second for p in points}
    print("\nSection V-D — trigger consumer throughput")
    print(f"{'partitions':>10} {'size (B)':>9} {'measured':>12} {'paper':>10}")
    for key, value in sorted(measured.items()):
        print(f"{key[0]:>10} {key[1]:>9} {value:>10.0f}/s {PAPER[key]:>8}/s")
    for key, paper_value in PAPER.items():
        assert measured[key] == pytest.approx(paper_value, rel=0.35), key
    # 8 partitions are roughly six times faster than 1 partition.
    for size in (32, 1024, 4096):
        ratio = measured[(8, size)] / measured[(1, size)]
        assert 5.0 <= ratio <= 7.0
