"""Benchmark-suite configuration.

Benchmarks assert wall-clock floors and relative-rate ratios; under
``REPRO_SANITIZE=1`` every fabric lock is an instrumented
:class:`repro.common.sync.SanitizedLock` whose per-acquisition
bookkeeping distorts exactly what these tests measure.  The sanitized
run (nightly soak, see ``.github/workflows/ci.yml``) therefore covers
the functional suites only; the un-instrumented benchmark job is what
enforces the performance floors.
"""

from pathlib import Path

import pytest

from repro.common import sync

_BENCH_DIR = Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    if not sync.sanitizer_enabled():
        return
    skip = pytest.mark.skip(
        reason="performance floors are not meaningful under REPRO_SANITIZE=1"
    )
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(skip)
