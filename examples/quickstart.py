"""Quickstart: stand up Octopus, publish events, consume them, fire a trigger.

Mirrors the walkthrough of the paper's SDK (Section IV-E): log in, register
a topic, obtain fabric credentials, produce and consume events, then deploy
a trigger that reacts to matching events automatically.

Run with::

    python examples/quickstart.py
"""

from repro.core import OctopusDeployment
from repro.faas.function import FunctionDefinition


def main() -> None:
    # 1. Stand up a full Octopus deployment (Table II "baseline" cluster).
    deployment = OctopusDeployment.create(num_brokers=2)

    # 2. Authenticate a user via the Globus-Auth-like flow and get an SDK client.
    alice = deployment.client("alice", "uchicago.edu")
    print("Logged in as:", alice.principal)

    # 3. Register a topic (PUT /topic/<topic>) and fetch MSK credentials.
    info = alice.register_topic("instrument-data", {"num_partitions": 2})
    print("Registered topic:", info["name"], "owned by", info["owner"])
    credentials = alice.create_key()
    print("Fabric credentials:", credentials["access_key"], "->", credentials["endpoint"])

    # 4. Produce a few events and read them back.
    producer = alice.producer()
    for index in range(5):
        producer.send(
            "instrument-data",
            {"event_type": "created", "path": f"/detector/frame_{index:04d}.h5"},
            key="detector-1",
        )
    print("Events in topic:", len(alice.read_all("instrument-data")))

    # 5. Deploy a trigger: whenever a "created" event arrives, run a function.
    notifications = []
    deployment.triggers.register_function(
        FunctionDefinition(
            name="notify-scientist",
            handler=lambda event, ctx: notifications.extend(
                record["value"]["path"] for record in event["records"]
            ),
        )
    )
    trigger = alice.create_trigger(
        "instrument-data",
        "notify-scientist",
        filter_pattern={"value": {"event_type": ["created"]}},
    )
    print("Deployed trigger:", trigger["trigger_id"])

    # 6. New events now invoke the trigger automatically.
    producer.send("instrument-data", {"event_type": "created", "path": "/detector/frame_9999.h5"})
    producer.send("instrument-data", {"event_type": "deleted", "path": "/detector/frame_0000.h5"})
    deployment.run_triggers()
    print("Trigger notified about:", notifications)

    # 7. Share the topic with a collaborator (fine-grained access control).
    alice.grant_user("instrument-data", "bob@anl.gov", ["READ", "DESCRIBE"])
    bob = deployment.client("bob", "anl.gov")
    print("Bob sees topics:", bob.list_topics())


if __name__ == "__main__":
    main()
