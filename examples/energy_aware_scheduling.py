"""Online task scheduling driven by Octopus resource telemetry.

Reproduces the Section VI-C application: per-resource monitors publish
power/utilization samples to Octopus; the scheduler consumes them to place
tasks on the resource with the best runtime/energy trade-off, and learns
from completed tasks.

Run with::

    python examples/energy_aware_scheduling.py
"""

from repro.apps.scheduling import SchedulingApplication
from repro.core import OctopusDeployment


def main() -> None:
    deployment = OctopusDeployment.create()
    client = deployment.client("scheduler-service", "uchicago.edu")

    for power_weight, label in ((0.0, "performance-first"), (0.9, "energy-aware")):
        app = SchedulingApplication(
            client,
            resources=["edge-node", "campus-cluster", "hpc-system"],
            topic=f"telemetry-{label}",
            power_weight=power_weight,
        )
        tasks = app.run_workload(60, estimated_seconds=2.0)
        energy = sum(task.energy_joules for task in tasks)
        runtime = sum(task.runtime_seconds for task in tasks)
        print(f"{label} scheduling:")
        print(f"  placements: {app.scheduler.placement_counts()}")
        print(f"  total runtime: {runtime:8.1f} s   total energy: {energy:8.1f} J")
        print(f"  telemetry samples consumed: "
              f"{sum(m.samples_seen for m in app.scheduler.models.values())}")


if __name__ == "__main__":
    main()
