"""Regenerate every table and figure of the paper's evaluation in one run.

Prints Table III, the Figure 3 curves, the Figure 4 and Figure 7 scaling
series, the Figure 5 multi-tenancy sweep, the Section V-D trigger
throughput numbers, the Figure 8 monitoring overheads and the
Section VII-C cost example.

Run with::

    python examples/reproduce_evaluation.py
"""

from repro.apps.workflow import run_monitoring_overhead_experiment
from repro.bench.costs import TriggerCostModel, scheduling_example_daily_cost
from repro.bench.report import (
    format_figure5,
    format_figure_series,
    format_scaling_series,
    format_table3,
)
from repro.faas.scaling import ScalingPolicy, TriggerScalingSimulator
from repro.simulation.evaluation import (
    run_figure3_series,
    run_figure5_multitenancy,
    run_full_table3,
    run_trigger_throughput,
)


def main() -> None:
    print("=" * 100)
    print("Table III — baseline performance and scalability")
    print(format_table3(run_full_table3()))

    print("\n" + "=" * 100)
    print(format_figure_series(
        "Figure 3 — latency vs. throughput (remote producers)", run_figure3_series()
    ))

    print("\n" + "=" * 100)
    figure4 = TriggerScalingSimulator(num_tasks=5000, task_duration_seconds=30.0,
                                      partitions=128, batch_size=1)
    print(format_scaling_series("Figure 4 — trigger scaling", figure4.run(), stride=120))

    print("\n" + "=" * 100)
    print(format_figure5(run_figure5_multitenancy()))

    print("\n" + "=" * 100)
    print("Section V-D — trigger throughput")
    for point in run_trigger_throughput():
        print(f"  partitions={point.partitions} size={point.event_size_bytes:>5} B: "
              f"{point.events_per_second:>9.0f} events/s")

    print("\n" + "=" * 100)
    figure7 = TriggerScalingSimulator(
        num_tasks=0, task_duration_seconds=15.0, partitions=8, batch_size=1,
        arrival_fn=lambda t: 2 if t <= 60.0 else 0,
        policy=ScalingPolicy(evaluation_interval_seconds=15.0, initial_concurrency=1,
                             max_concurrency=8),
    )
    print(format_scaling_series("Figure 7 — data-automation trigger activity",
                                figure7.run(max_seconds=400.0), stride=20))

    print("\n" + "=" * 100)
    print("Figure 8 — Parsl monitoring overhead per event (ms)")
    results = run_monitoring_overhead_experiment()
    for duration, label in ((0.0, "noop"), (0.010, "sleep10ms"), (0.100, "sleep100ms")):
        print(f"  {label}:")
        for htex, octo in zip(results["HTEX"][duration], results["Octopus"][duration]):
            print(f"    workers={htex['workers']:>3}  HTEX={htex['overhead_per_event_ms']:6.2f}"
                  f"  Octopus={octo['overhead_per_event_ms']:6.2f}")

    print("\n" + "=" * 100)
    print("Section VII-C — cost model")
    cost = scheduling_example_daily_cost()
    print(f"  scheduling example: {cost['invocations_per_day']:,.0f} invocations/day, "
          f"${cost['total_cost_usd']:.2f}/day")
    print(f"  minimum MSK cluster: ${TriggerCostModel().monthly_minimum_broker_cost():.2f}/month")


if __name__ == "__main__":
    main()
