"""Self-driving laboratory campaign with live monitoring and provenance.

Reproduces the Section VI-A application: robots and instruments publish
every workflow step to a global Octopus event log; dashboards read the log
for live status, provenance chains and throughput summaries, and stalled
experiments are detected from the same stream.

Run with::

    python examples/sdl_campaign.py
"""

import time

from repro.apps.sdl import SelfDrivingLab
from repro.core import OctopusDeployment


def main() -> None:
    deployment = OctopusDeployment.create()
    operator = deployment.client("sdl-operator", "anl.gov")
    lab = SelfDrivingLab(operator)

    # Run a small campaign across two instruments.
    for index in range(3):
        lab.run_experiment(f"perovskite-{index}", "robot-arm-1",
                           results={"bandgap_ev": 1.5 + 0.05 * index})
    for index in range(2):
        lab.run_experiment(f"catalyst-{index}", "xrd-beamline",
                           results={"phase": "cubic"})

    # One experiment stalls mid-flight.
    lab.record_action("catalyst-stuck", "xrd-beamline", "running_instrument",
                      timestamp=time.time() - 7200.0)

    print("Campaign status:")
    for experiment, stage in sorted(lab.experiment_status().items()):
        print(f"  {experiment:>16}: {stage}")
    print("Completed experiments per instrument:", lab.throughput_summary())
    print("Stalled experiments:", lab.detect_stalled(timeout_seconds=3600.0))

    print("\nProvenance of perovskite-1:")
    for event in lab.provenance("perovskite-1"):
        print(f"  {event['action']:<20} @ {event['timestamp']:.3f}")

    # Live monitoring only sees events published after it attaches.
    monitor = lab.live_monitor()
    lab.record_action("perovskite-3", "robot-arm-1", "designed")
    fresh = [record.value["experiment_id"] for record in monitor.poll_flat()]
    print("\nLive monitor saw new events for:", fresh)


if __name__ == "__main__":
    main()
