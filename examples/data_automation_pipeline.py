"""Scientific data automation: synchronize two parallel filesystems.

Reproduces the Section VI-B application end to end: an instrument writes
files at one facility, FSMon publishes events to a local fabric, a local
aggregator forwards unique file-creation events to Octopus, and a trigger
submits transfer requests that replicate each new file to the other
facility.

Run with::

    python examples/data_automation_pipeline.py
"""

from repro.apps.data_automation import DataAutomationPipeline
from repro.core import OctopusDeployment


def main() -> None:
    deployment = OctopusDeployment.create()
    beamline = deployment.client("beamline-operator", "aps.anl.gov")

    pipeline = DataAutomationPipeline(deployment, beamline, sites=["aps-lustre", "alcf-gpfs"])

    # An experiment writes 25 detector files at the APS; a second run later
    # writes 10 more at the ALCF (synchronization is symmetric).
    pipeline.ingest_instrument_output("aps-lustre", "/scan-0001", 25, size_bytes=4 << 20)
    summary = pipeline.synchronize()
    print("After first experiment:", summary)

    pipeline.ingest_instrument_output("alcf-gpfs", "/analysis-products", 10)
    summary = pipeline.synchronize()
    print("After analysis products:", summary)

    print("File inventory per site:", pipeline.file_inventory())
    print("Edge aggregation report:")
    for site, report in pipeline.reduction_report().items():
        print(f"  {site}: {report['raw_events']} raw events -> "
              f"{report['forwarded']} forwarded "
              f"({report['reduction_factor']:.1f}x reduction)")
    succeeded = [t for t in pipeline.transfer.tasks(status="SUCCEEDED")]
    print(f"Transfers completed: {len(succeeded)}")


if __name__ == "__main__":
    main()
