"""HTTP gateway quickstart: the fabric over a real socket, stdlib only.

Boots an in-process cluster behind :class:`repro.gateway.GatewayServer`
on an ephemeral port, then walks the wire API with nothing but
``urllib``: create a topic, produce JSON records *and* a packed
wire-format batch, long-poll fetch, commit offsets for a consumer group
and join the cooperative group protocol — the same produce/fetch/commit
loop as ``examples/quickstart.py``, but every hop crossing HTTP.

Run with::

    PYTHONPATH=src python examples/http_quickstart.py
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro.fabric.cluster import FabricCluster
from repro.fabric.record import EventRecord, PackedRecordBatch
from repro.gateway import BATCH_CONTENT_TYPE, Gateway, GatewayServer


def call(base, method, path, *, json_body=None, body=b"", headers=None):
    headers = dict(headers or {})
    if json_body is not None:
        body = json.dumps(json_body).encode()
        headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        base + path, data=body or None, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


def main() -> None:
    cluster = FabricCluster(num_brokers=3, name="http-quickstart")
    with GatewayServer(Gateway(cluster)) as server:
        base = server.url
        print(f"gateway up at {base}")

        # 1. Control plane: create a topic (schema-validated body).
        status, topic = call(
            base,
            "POST",
            "/v1/topics",
            json_body={"name": "instrument-data", "config": {"num_partitions": 2}},
        )
        print(f"created topic ({status}):", topic["name"], topic["config"]["num_partitions"], "partitions")

        # ... and see what a schema violation looks like.
        status, err = call(base, "POST", "/v1/topics", json_body={"nmae": "oops"})
        print(f"schema violation ({status}):", err["details"]["fields"])

        # 2. Produce JSON records.
        status, produced = call(
            base,
            "POST",
            "/v1/topics/instrument-data/partitions/0/records",
            json_body={
                "records": [
                    {"value": "reading-1", "key": "sensor-a"},
                    {"value": "reading-2", "key": "sensor-b", "headers": {"site": "aps"}},
                ]
            },
        )
        print(f"produced ({status}): offsets {produced['base_offset']}..{produced['last_offset']}")

        # 3. Produce a packed wire-format batch — compressed on the
        #    client, stored without the gateway re-encoding anything.
        wire = (
            PackedRecordBatch.from_events(
                [EventRecord(value=f"bulk-{i} " + "x" * 64) for i in range(50)]
            )
            .seal_wire("gzip")
            .to_bytes()
        )
        status, produced = call(
            base,
            "POST",
            "/v1/topics/instrument-data/partitions/0/records",
            body=wire,
            headers={"Content-Type": BATCH_CONTENT_TYPE},
        )
        print(f"wire batch ({status}): {produced['count']} records, {len(wire)} bytes on the wire")

        # 4. Fetch them back.
        status, fetched = call(
            base, "GET", "/v1/topics/instrument-data/partitions/0/records?max_records=3"
        )
        print(f"fetched ({status}):", [r["value"] for r in fetched["records"]], "...")

        # 5. Long-poll: a fetch at the log end parks until data arrives.
        def produce_late():
            time.sleep(0.3)
            call(
                base,
                "POST",
                "/v1/topics/instrument-data/partitions/1/records",
                json_body={"records": [{"value": "woke-the-poller"}]},
            )

        threading.Thread(target=produce_late, daemon=True).start()
        t0 = time.monotonic()
        status, polled = call(
            base,
            "GET",
            "/v1/topics/instrument-data/partitions/1/records?max_wait_ms=5000",
        )
        print(
            f"long-poll ({status}): got {polled['records'][0]['value']!r} "
            f"after {time.monotonic() - t0:.2f}s (deadline was 5s)"
        )

        # 6. Consumer group: join, commit with the generation, leave.
        status, member = call(
            base,
            "POST",
            "/v1/groups/analyzers/members",
            json_body={"client_id": "worker-1", "topics": ["instrument-data"]},
        )
        print(f"joined group ({status}): {member['member_id']} gen {member['generation']} owns {member['assignment']}")

        status, committed = call(
            base,
            "POST",
            "/v1/groups/analyzers/offsets",
            json_body={
                "offsets": [{"topic": "instrument-data", "partition": 0, "offset": 52}],
                "generation": member["generation"],
                "member_id": member["member_id"],
            },
        )
        print(f"committed ({status}):", committed["committed"])

        status, _ = call(
            base, "DELETE", f"/v1/groups/analyzers/members/{member['member_id']}"
        )
        print(f"left group ({status})")

        # 7. The error taxonomy is stable and machine-readable.
        status, err = call(base, "GET", "/v1/topics/not-a-topic")
        print(f"unknown topic ({status}): code={err['code']} retriable={err['retriable']}")


if __name__ == "__main__":
    main()
