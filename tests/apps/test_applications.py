"""Integration tests for the five Section VI applications."""

import pytest

from repro.apps.data_automation import DataAutomationPipeline
from repro.apps.epidemic import DataSource, EpidemicPlatform, clean_series, estimate_r
from repro.apps.scheduling import SchedulingApplication
from repro.apps.sdl import EXPERIMENT_STAGES, SelfDrivingLab
from repro.apps.workflow import (
    HTEXDatabaseMonitor,
    OctopusWorkflowMonitor,
    WorkflowEngine,
    run_monitoring_overhead_experiment,
)
from repro.core import OctopusDeployment


@pytest.fixture
def deployment():
    return OctopusDeployment.create()


@pytest.fixture
def client(deployment):
    return deployment.client("app-owner", "anl.gov")


class TestSelfDrivingLab:
    def test_full_experiment_produces_all_stages(self, client):
        lab = SelfDrivingLab(client)
        lab.run_experiment("exp-1", "robot-arm-1", results={"yield": 0.82})
        provenance = lab.provenance("exp-1")
        assert [e["action"] for e in provenance] == list(EXPERIMENT_STAGES)
        assert provenance[-1]["metadata"]["results"] == {"yield": 0.82}

    def test_status_and_throughput_views(self, client):
        lab = SelfDrivingLab(client)
        lab.run_experiment("exp-1", "robot-arm-1")
        lab.record_action("exp-2", "xrd", "designed", timestamp=100.0)
        lab.record_action("exp-2", "xrd", "queued", timestamp=200.0)
        status = lab.experiment_status()
        assert status["exp-1"] == "completed"
        assert status["exp-2"] == "queued"
        assert lab.throughput_summary() == {"robot-arm-1": 1}

    def test_stalled_experiment_detection(self, client):
        lab = SelfDrivingLab(client)
        lab.record_action("stuck", "robot", "running_instrument", timestamp=1000.0)
        lab.run_experiment("fine", "robot")
        stalled = lab.detect_stalled(now=1000.0 + 7200.0, timeout_seconds=3600.0)
        assert stalled == ["stuck"]

    def test_live_monitor_sees_only_new_events(self, client):
        lab = SelfDrivingLab(client)
        lab.record_action("old", "robot", "designed")
        monitor = lab.live_monitor()
        assert monitor.poll_flat() == []
        lab.record_action("new", "robot", "designed")
        values = [r.value["experiment_id"] for r in monitor.poll_flat()]
        assert values == ["new"]


class TestDataAutomation:
    def test_new_files_are_replicated_to_other_sites(self, deployment, client):
        pipeline = DataAutomationPipeline(deployment, client, sites=["fs1", "fs2"])
        pipeline.ingest_instrument_output("fs1", "/experiment-7", 5)
        summary = pipeline.synchronize()
        assert summary["files_copied"] == 5
        inventory = pipeline.file_inventory()
        assert inventory["fs1"] == 5 and inventory["fs2"] == 5

    def test_aggregation_reduces_event_volume(self, deployment, client):
        pipeline = DataAutomationPipeline(deployment, client)
        pipeline.ingest_instrument_output("fs1", "/run", 10)
        report = pipeline.reduction_report()["fs1"]
        # created + closed raw events per file, only unique created forwarded.
        assert report["raw_events"] == 20
        assert report["forwarded"] == 10
        assert report["reduction_factor"] == pytest.approx(2.0)

    def test_replication_does_not_echo_back(self, deployment, client):
        pipeline = DataAutomationPipeline(deployment, client, sites=["fs1", "fs2"])
        pipeline.ingest_instrument_output("fs1", "/d", 3)
        pipeline.synchronize()
        first_transfers = len(pipeline.replicated)
        pipeline.synchronize()
        assert len(pipeline.replicated) == first_transfers

    def test_three_sites_all_converge(self, deployment, client):
        pipeline = DataAutomationPipeline(deployment, client, sites=["fs1", "fs2", "fs3"])
        pipeline.ingest_instrument_output("fs2", "/d", 2)
        pipeline.synchronize()
        assert set(pipeline.file_inventory().values()) == {2}

    def test_failed_transfer_leaves_destination_unchanged(self, deployment, client):
        pipeline = DataAutomationPipeline(deployment, client, sites=["fs1", "fs2"])
        pipeline.transfer.inject_failure("/d/run_00000.h5")
        pipeline.ingest_instrument_output("fs1", "/d", 1)
        summary = pipeline.synchronize()
        assert summary["files_copied"] == 0
        statuses = {entry["status"] for entry in pipeline.replicated}
        assert "FAILED" in statuses


class TestScheduling:
    def test_tasks_are_placed_and_executed(self, client):
        app = SchedulingApplication(client)
        tasks = app.run_workload(20)
        assert len(tasks) == 20
        assert all(t.status == "COMPLETED" for t in tasks)
        assert sum(app.scheduler.placement_counts().values()) == 20

    def test_scheduler_uses_telemetry(self, client):
        app = SchedulingApplication(client)
        app.collect_telemetry()
        applied = app.scheduler.ingest_telemetry()
        assert applied >= len(app.monitors)
        assert set(app.scheduler.models) == set(app.monitors)

    def test_power_weight_changes_placement(self, client):
        perf_app = SchedulingApplication(client, topic="telemetry-perf", power_weight=0.0)
        perf_tasks = perf_app.run_workload(30)
        energy_app = SchedulingApplication(client, topic="telemetry-energy", power_weight=1.0)
        energy_tasks = energy_app.run_workload(30)
        perf_energy = sum(t.energy_joules for t in perf_tasks)
        green_energy = sum(t.energy_joules for t in energy_tasks)
        assert green_energy <= perf_energy * 1.5  # energy-aware placement not worse

    def test_invalid_power_weight(self, client):
        with pytest.raises(ValueError):
            SchedulingApplication(client, topic="t-bad", power_weight=2.0)


class TestEpidemic:
    @staticmethod
    def growing(poll):
        return [10 * (1.6 ** i) for i in range(poll + 6)]

    @staticmethod
    def flat(poll):
        return [50.0] * (poll + 6)

    def test_data_updates_drive_models_and_results(self, deployment, client):
        platform = EpidemicPlatform(deployment, client)
        platform.register_source(DataSource("health-dept", "illinois", self.flat))
        platform.poll_sources()
        summary = platform.run_pipeline()
        assert summary["model_results"] == 1
        assert platform.latest_r("illinois") == pytest.approx(1.0, abs=0.2)
        dashboard = platform.decision_dashboard()
        assert "illinois" in dashboard

    def test_growing_outbreak_triggers_notification(self, deployment, client):
        platform = EpidemicPlatform(deployment, client, anomaly_threshold_r=1.3)
        platform.register_source(DataSource("hospital-feed", "cook-county", self.growing))
        platform.register_source(DataSource("health-dept", "illinois", self.flat))
        platform.poll_sources()
        platform.run_pipeline()
        regions = {n["region"] for n in platform.notifications}
        assert regions == {"cook-county"}
        assert platform.latest_r("cook-county") > 1.3

    def test_model_results_persisted_to_store(self, deployment, client):
        platform = EpidemicPlatform(deployment, client)
        platform.register_source(DataSource("s", "region-x", self.flat))
        platform.poll_sources()
        platform.run_pipeline()
        assert platform.store.list("epidemic-models", prefix="region-x/")

    def test_clean_series_and_estimate_r(self):
        assert clean_series([1.0, -5.0, float("nan"), 3.0]) == [1.0, 1.0, 1.0, 3.0]
        assert estimate_r([10, 10, 10, 10, 10, 10, 10, 10]) == pytest.approx(1.0)
        assert estimate_r([1, 2, 4, 8, 16, 32, 64, 128]) > 1.5
        assert estimate_r([5.0]) == 1.0


class TestWorkflow:
    def test_engine_runs_all_tasks(self):
        result = WorkflowEngine(num_tasks=16, num_nodes=2, workers_per_node=2,
                                task_duration_seconds=0.01).run()
        assert result.events >= 16 * 3
        assert result.makespan_seconds >= result.ideal_seconds
        assert result.workers == 4

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WorkflowEngine(num_tasks=0)

    def test_octopus_monitor_has_lower_overhead_than_htex(self):
        htex = WorkflowEngine(num_tasks=64, workers_per_node=4,
                              monitor=HTEXDatabaseMonitor()).run()
        octopus = WorkflowEngine(num_tasks=64, workers_per_node=4,
                                 monitor=OctopusWorkflowMonitor()).run()
        assert octopus.overhead_per_event_ms < htex.overhead_per_event_ms

    def test_overhead_per_event_decreases_with_workers(self):
        results = run_monitoring_overhead_experiment(
            worker_counts=(1, 8, 64), task_durations_seconds=(0.01,)
        )
        for system in ("HTEX", "Octopus"):
            series = results[system][0.01]
            overheads = [point["overhead_per_event_ms"] for point in series]
            assert overheads[0] > overheads[-1]

    def test_more_workers_more_events(self):
        results = run_monitoring_overhead_experiment(
            worker_counts=(1, 64), task_durations_seconds=(0.0,)
        )
        series = results["Octopus"][0.0]
        assert series[-1]["events"] > series[0]["events"]

    def test_octopus_monitor_batches_flushes(self):
        monitor = OctopusWorkflowMonitor(batch_size=10)
        WorkflowEngine(num_tasks=40, workers_per_node=2, monitor=monitor).run()
        assert monitor.flushes >= 40 * 3 // 10
