"""Tests for the monitoring substrates and simulated science services."""

import pytest

from repro.monitoring.aggregator import LocalAggregator
from repro.monitoring.fsmon import FileSystemMonitor
from repro.monitoring.resources import EnergyMonitor, ResourceUtilizationMonitor
from repro.services.compute import ComputeService
from repro.services.storage import ObjectStore
from repro.services.transfer import TransferService


class TestFileSystemMonitor:
    def test_create_modify_delete_events(self):
        monitor = FileSystemMonitor("lustre")
        monitor.create_file("/data/a.h5", 100)
        monitor.modify_file("/data/a.h5", 200)
        monitor.delete_file("/data/a.h5")
        assert [e.event_type for e in monitor.events] == ["created", "modified", "deleted"]
        assert not monitor.exists("/data/a.h5")

    def test_create_existing_becomes_modify(self):
        monitor = FileSystemMonitor("fs")
        monitor.create_file("/x", 1)
        event = monitor.create_file("/x", 2)
        assert event.event_type == "modified"

    def test_modify_missing_becomes_create(self):
        monitor = FileSystemMonitor("fs")
        assert monitor.modify_file("/new", 5).event_type == "created"

    def test_sink_receives_events(self):
        seen = []
        monitor = FileSystemMonitor("fs", sink=seen.append)
        monitor.create_file("/a", 1)
        assert len(seen) == 1 and seen[0].path == "/a"

    def test_simulated_experiment_output(self):
        monitor = FileSystemMonitor("fs")
        events = monitor.simulate_experiment_output("/run42", 5)
        assert len(events) == 10  # created + closed per file
        assert monitor.event_counts() == {"created": 5, "closed": 5}
        assert len(monitor.files()) == 5

    def test_event_dict_matches_trigger_pattern(self):
        from repro.faas.patterns import matches_pattern

        monitor = FileSystemMonitor("fs")
        event = monitor.create_file("/data/new.h5", 10)
        assert matches_pattern({"event_type": ["created"]}, event.to_dict())


class TestLocalAggregator:
    def test_filters_uninteresting_and_duplicates(self):
        aggregator = LocalAggregator()
        events = [
            {"event_type": "created", "path": "/a"},
            {"event_type": "modified", "path": "/a"},
            {"event_type": "created", "path": "/a"},
            {"event_type": "created", "path": "/b"},
        ]
        assert aggregator.offer_many(events) == 2
        assert aggregator.stats.suppressed_uninteresting == 1
        assert aggregator.stats.suppressed_duplicates == 1
        assert aggregator.stats.reduction_factor == pytest.approx(2.0)

    def test_publish_callback_invoked_for_survivors(self):
        published = []
        aggregator = LocalAggregator(publish=published.append)
        aggregator.offer({"event_type": "created", "path": "/a"})
        aggregator.offer({"event_type": "deleted", "path": "/a"})
        assert published == [{"event_type": "created", "path": "/a"}]

    def test_window_eviction_keeps_memory_bounded(self):
        aggregator = LocalAggregator(window_size=10)
        for i in range(50):
            aggregator.offer({"event_type": "created", "path": f"/f{i}"})
        assert len(aggregator._seen) <= 10
        assert aggregator.stats.events_out == 50

    def test_custom_interesting_types(self):
        aggregator = LocalAggregator(interesting_types=("created", "deleted"))
        assert aggregator.offer({"event_type": "deleted", "path": "/x"})
        assert not aggregator.offer({"event_type": "closed", "path": "/x"})


class TestResourceMonitors:
    def test_energy_monitor_power_scales_with_utilisation(self):
        energy = EnergyMonitor(idle_watts=50, peak_watts=250)
        assert energy.power_at(0.0) == 50
        assert energy.power_at(1.0) == 250
        energy.accumulate(0.5, 10.0)
        assert energy.energy_joules == pytest.approx(1500.0)

    def test_energy_monitor_validation(self):
        with pytest.raises(ValueError):
            EnergyMonitor(idle_watts=100, peak_watts=50)

    def test_utilization_monitor_samples_follow_load(self):
        samples_published = []
        monitor = ResourceUtilizationMonitor(
            "hpc", num_cores=10, sink=samples_published.append
        )
        idle = monitor.sample()
        monitor.task_started(10)
        busy = monitor.sample()
        assert busy.cpu_percent > idle.cpu_percent
        assert busy.power_watts > idle.power_watts
        assert busy.running_tasks == 10
        monitor.task_finished(20)
        assert monitor.running_tasks == 0
        assert len(samples_published) == 2
        assert samples_published[0]["resource"] == "hpc"

    def test_sample_window(self):
        monitor = ResourceUtilizationMonitor("edge", num_cores=4)
        samples = monitor.sample_window(5)
        assert len(samples) == 5
        assert samples[-1].energy_joules > samples[0].energy_joules


class TestTransferService:
    def test_submit_auto_completes(self):
        service = TransferService()
        task = service.submit(source_endpoint="fs1", destination_endpoint="fs2",
                              source_path="/data/a.h5", size_bytes=100)
        assert task.status == "SUCCEEDED"
        assert service.status(task.task_id) == "SUCCEEDED"

    def test_manual_completion_and_listing(self):
        service = TransferService(auto_complete=False)
        service.submit(source_endpoint="a", destination_endpoint="b", source_path="/x")
        assert service.tasks(status="ACTIVE")
        finished = service.advance()
        assert len(finished) == 1
        assert not service.tasks(status="ACTIVE")

    def test_injected_failure(self):
        service = TransferService()
        service.inject_failure("/bad", "permission denied")
        task = service.submit(source_endpoint="a", destination_endpoint="b",
                              source_path="/bad")
        assert task.status == "FAILED"
        # Subsequent transfers of the same path succeed (failure consumed).
        assert service.submit(source_endpoint="a", destination_endpoint="b",
                              source_path="/bad").status == "SUCCEEDED"

    def test_completion_callback(self):
        seen = []
        service = TransferService(on_complete=seen.append)
        service.submit(source_endpoint="a", destination_endpoint="b", source_path="/x")
        assert len(seen) == 1

    def test_transfer_time_estimate(self):
        service = TransferService(bandwidth_mbps=8000)
        assert service.transfer_time_seconds(10**9) == pytest.approx(1.0)


class TestComputeService:
    def test_submit_and_drain(self):
        compute = ComputeService()
        compute.register_endpoint("hpc", cores=2)
        compute.register_function("double", lambda x: x * 2)
        tasks = [compute.submit("hpc", "double", i) for i in range(5)]
        compute.drain()
        assert all(t.status == "COMPLETED" for t in tasks)
        assert [t.result for t in tasks] == [0, 2, 4, 6, 8]

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(KeyError):
            ComputeService().submit("ghost", "f")

    def test_failed_handler_marks_task_failed(self):
        compute = ComputeService()
        compute.register_endpoint("e")
        compute.register_function("boom", lambda x: 1 / 0)
        task = compute.submit("e", "boom")
        compute.drain()
        assert task.status == "FAILED"
        assert "ZeroDivisionError" in task.result

    def test_relative_speed_changes_runtime_and_energy(self):
        compute = ComputeService()
        compute.register_endpoint("slow", relative_speed=0.5, power_watts_per_core=2.0)
        compute.register_endpoint("fast", relative_speed=2.0, power_watts_per_core=6.0)
        slow = compute.submit("slow", "f", estimated_seconds=10.0)
        fast = compute.submit("fast", "f", estimated_seconds=10.0)
        compute.drain()
        assert slow.runtime_seconds > fast.runtime_seconds
        assert slow.energy_joules != fast.energy_joules

    def test_completion_callback(self):
        seen = []
        compute = ComputeService(on_task_complete=seen.append)
        compute.register_endpoint("e")
        compute.submit("e", "f")
        compute.drain()
        assert len(seen) == 1


class TestObjectStore:
    def test_put_get_json_and_versions(self):
        store = ObjectStore()
        store.put("bucket", "key", {"a": 1})
        store.put("bucket", "key", {"a": 2})
        assert store.get_json("bucket", "key") == {"a": 2}
        assert store.versions("bucket", "key") == 2

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            ObjectStore().get("b", "k")

    def test_list_with_prefix_and_delete(self):
        store = ObjectStore()
        store.put("b", "runs/1.json", "x")
        store.put("b", "runs/2.json", "y")
        store.put("b", "other.txt", "z")
        assert store.list("b", prefix="runs/") == ["runs/1.json", "runs/2.json"]
        assert store.delete("b", "other.txt")
        assert not store.delete("b", "other.txt")

    def test_persistence_sink_stores_fabric_events(self):
        from repro.fabric import FabricCluster, TopicConfig
        from repro.fabric.record import EventRecord

        store = ObjectStore()
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().add_persistence_sink(store.persistence_sink("events"))
        cluster.admin().create_topic("t", TopicConfig(persist_to_store=True))
        cluster.append("t", 0, EventRecord(value={"x": 1}))
        keys = store.list("events")
        assert len(keys) == 1
        assert store.get_json("events", keys[0])["value"] == {"x": 1}
        assert store.total_bytes("events") > 0
