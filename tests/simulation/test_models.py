"""Tests for the network, capacity, latency and throughput models."""

import pytest

from repro.simulation.client_model import LatencyModel, ProduceWorkload, ThroughputModel
from repro.simulation.cluster_model import (
    CLUSTER_CONFIGS,
    ClusterCapacityModel,
    ClusterSpec,
)
from repro.simulation.metrics import (
    LatencyStats,
    ThroughputMeasurement,
    format_events_per_second,
)
from repro.simulation.network import ClientLocation, NetworkModel


class TestNetworkModel:
    def test_remote_rtt_matches_paper(self):
        network = NetworkModel()
        assert 46.0 <= network.rtt_ms("remote") <= 47.0
        assert network.rtt_ms("local") < 5.0

    def test_remote_rtt_low_deviation(self):
        network = NetworkModel()
        samples = network.sample_rtt_ms(ClientLocation.REMOTE, size=1000)
        assert abs(samples.mean() - 46.5) < 1.0
        assert samples.std() / samples.mean() < 0.01

    def test_transfer_time_scales_with_payload(self):
        network = NetworkModel()
        small = network.one_way_ms("remote", 1024)
        large = network.one_way_ms("remote", 1024 * 1024)
        assert large > small

    def test_unknown_location_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().rtt_ms("moon")


class TestClusterSpecs:
    def test_table2_configurations(self):
        assert CLUSTER_CONFIGS["baseline"].num_brokers == 2
        assert CLUSTER_CONFIGS["baseline"].vcpus_per_broker == 2
        assert CLUSTER_CONFIGS["baseline"].memory_gb_per_broker == 8
        assert CLUSTER_CONFIGS["scale-up"].vcpus_per_broker == 4
        assert CLUSTER_CONFIGS["scale-up"].memory_gb_per_broker == 16
        assert CLUSTER_CONFIGS["scale-out"].num_brokers == 4

    def test_monthly_cost_of_smallest_cluster_near_70_usd(self):
        spec = ClusterSpec("minimal", num_brokers=2, instance_type="kafka.t3.small")
        cost = ClusterCapacityModel(spec).monthly_broker_cost_usd()
        assert 60.0 <= cost <= 80.0


class TestCapacityModel:
    @pytest.fixture
    def baseline(self):
        return ClusterCapacityModel(CLUSTER_CONFIGS["baseline"])

    def test_small_events_are_record_bound_large_are_byte_bound(self, baseline):
        assert baseline.produce_is_record_bound(32)
        assert not baseline.produce_is_record_bound(1024)
        small = baseline.produce_capacity(event_size_bytes=32)
        large = baseline.produce_capacity(event_size_bytes=4096)
        assert small > 20 * large

    def test_reads_are_roughly_twice_writes(self, baseline):
        for size in (1024, 4096):
            write = baseline.produce_capacity(event_size_bytes=size)
            read = baseline.consume_capacity(event_size_bytes=size)
            assert 1.5 <= read / write <= 2.5

    def test_acks_ordering(self, baseline):
        acks0 = baseline.produce_capacity(event_size_bytes=1024, acks=0)
        acks1 = baseline.produce_capacity(event_size_bytes=1024, acks=1)
        acks_all = baseline.produce_capacity(event_size_bytes=1024, acks="all")
        assert acks0 > acks1 > acks_all
        assert acks_all / acks0 == pytest.approx(0.33, abs=0.05)

    def test_replication_costs_writes_not_reads(self, baseline):
        rf2 = baseline.produce_capacity(event_size_bytes=1024, replication_factor=2)
        rf4 = baseline.produce_capacity(event_size_bytes=1024, replication_factor=4)
        assert 0.7 <= rf4 / rf2 <= 0.85
        assert baseline.consume_capacity(event_size_bytes=1024) == pytest.approx(
            baseline.consume_capacity(event_size_bytes=1024)
        )

    def test_scale_out_beats_scale_up_for_writes(self):
        up = ClusterCapacityModel(CLUSTER_CONFIGS["scale-up"])
        out = ClusterCapacityModel(CLUSTER_CONFIGS["scale-out"])
        kwargs = dict(event_size_bytes=1024, acks=0, replication_factor=2, partitions=4)
        assert out.produce_capacity(**kwargs) > up.produce_capacity(**kwargs)

    def test_remote_writes_slightly_slower_reads_slightly_faster(self, baseline):
        local_w = baseline.produce_capacity(event_size_bytes=1024, location="local")
        remote_w = baseline.produce_capacity(event_size_bytes=1024, location="remote")
        assert remote_w < local_w
        local_r = baseline.consume_capacity(event_size_bytes=1024, location="local")
        remote_r = baseline.consume_capacity(event_size_bytes=1024, location="remote")
        assert remote_r >= local_r

    def test_more_partitions_help_slightly(self, baseline):
        p2 = baseline.produce_capacity(event_size_bytes=1024, partitions=2)
        p4 = baseline.produce_capacity(event_size_bytes=1024, partitions=4)
        assert 1.0 < p4 / p2 < 1.15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"event_size_bytes": 0},
            {"event_size_bytes": 1024, "replication_factor": 0},
            {"event_size_bytes": 1024, "acks": "two"},
            {"event_size_bytes": 1024, "partitions": 0},
        ],
    )
    def test_invalid_inputs_rejected(self, baseline, kwargs):
        with pytest.raises(ValueError):
            baseline.produce_capacity(**kwargs)


class TestThroughputAndLatencyModels:
    @pytest.fixture
    def models(self):
        spec = CLUSTER_CONFIGS["baseline"]
        capacity = ClusterCapacityModel(spec)
        return ThroughputModel(capacity), LatencyModel(spec)

    def test_throughput_saturates_with_producer_count(self, models):
        throughput_model, _ = models
        workload = ProduceWorkload(num_producers=20)
        low = throughput_model.achieved_throughput(workload)
        high = throughput_model.achieved_throughput(workload.with_producers(100))
        assert high > low
        assert high == pytest.approx(
            throughput_model.produce_capacity(workload), rel=1e-6
        )

    def test_utilization_bounded(self, models):
        throughput_model, _ = models
        assert throughput_model.utilization(ProduceWorkload(num_producers=1)) < 0.1
        assert throughput_model.utilization(ProduceWorkload(num_producers=500)) == 1.0

    def test_latency_rises_with_utilization(self, models):
        _, latency_model = models
        workload = ProduceWorkload()
        low = latency_model.median_latency_ms(workload, 0.2, record_bound=False)
        high = latency_model.median_latency_ms(workload, 1.0, record_bound=False)
        assert high > low

    def test_remote_latency_includes_wan_rtt(self, models):
        _, latency_model = models
        local = latency_model.median_latency_ms(
            ProduceWorkload(location=ClientLocation.LOCAL), 1.0, record_bound=False
        )
        remote = latency_model.median_latency_ms(
            ProduceWorkload(location=ClientLocation.REMOTE), 1.0, record_bound=False
        )
        assert 25.0 <= remote - local <= 45.0

    def test_acks_all_latency_penalty(self, models):
        _, latency_model = models
        base = latency_model.median_latency_ms(ProduceWorkload(acks=0), 1.0, record_bound=False)
        alls = latency_model.median_latency_ms(
            ProduceWorkload(acks="all"), 1.0, record_bound=False
        )
        assert 80.0 <= alls - base <= 120.0

    def test_p99_grows_with_partitions_per_broker(self, models):
        _, latency_model = models
        p2 = latency_model.latency_stats(ProduceWorkload(partitions=2), 1.0, record_bound=False)
        p4 = latency_model.latency_stats(ProduceWorkload(partitions=4), 1.0, record_bound=False)
        assert p4.p99_ms > p2.p99_ms + 100
        assert p4.median_ms <= p2.median_ms  # medians improve slightly

    def test_unknown_acks_rejected(self, models):
        _, latency_model = models
        with pytest.raises(ValueError):
            latency_model.median_latency_ms(ProduceWorkload(acks=5), 1.0, record_bound=False)


class TestMetrics:
    def test_latency_stats_from_samples(self):
        stats = LatencyStats.from_samples(list(range(1, 101)))
        assert stats.median_ms == pytest.approx(50.5)
        assert stats.p99_ms == pytest.approx(99.01)
        assert stats.count == 100

    def test_empty_samples(self):
        assert LatencyStats.from_samples([]).count == 0

    def test_mean_of_rounds(self):
        rounds = [
            LatencyStats(median_ms=10, p99_ms=100, mean_ms=20, count=5),
            LatencyStats(median_ms=20, p99_ms=200, mean_ms=40, count=5),
            LatencyStats(median_ms=0, p99_ms=0, mean_ms=0, count=0),  # ignored
        ]
        merged = LatencyStats.mean_of_rounds(rounds)
        assert merged.median_ms == 15 and merged.p99_ms == 150 and merged.count == 10

    def test_throughput_definition_matches_paper(self):
        measurement = ThroughputMeasurement.from_agent_windows(
            events=1000, windows=[(0.0, 5.0), (1.0, 10.0)]
        )
        assert measurement.events_per_second == pytest.approx(100.0)

    def test_format_events_per_second(self):
        assert format_events_per_second(4_289_000) == "4,289 K"
        assert format_events_per_second(195_000) == "195 K"
        assert format_events_per_second(512) == "512"
