"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.kernel import SimulationKernel


class TestScheduling:
    def test_time_advances_in_event_order(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append(("b", kernel.now)))
        kernel.schedule(1.0, lambda: seen.append(("a", kernel.now)))
        kernel.schedule(9.0, lambda: seen.append(("c", kernel.now)))
        end = kernel.run()
        assert seen == [("a", 1.0), ("b", 5.0), ("c", 9.0)]
        assert end == 9.0

    def test_equal_times_run_fifo(self):
        kernel = SimulationKernel()
        seen = []
        for label in "abc":
            kernel.schedule(2.0, lambda label=label: seen.append(label))
        kernel.run()
        assert seen == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        kernel = SimulationKernel()
        with pytest.raises(ValueError):
            kernel.schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule(1.0, lambda: seen.append(1))
        kernel.schedule(100.0, lambda: seen.append(2))
        kernel.run(until=10.0)
        assert seen == [1]
        assert kernel.now == 10.0

    def test_runaway_protection(self):
        kernel = SimulationKernel()

        def reschedule():
            kernel.schedule(0.0, reschedule)

        kernel.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            kernel.run(max_events=100)


class TestProcesses:
    def test_process_yields_delays(self):
        kernel = SimulationKernel()
        marks = []

        def worker():
            marks.append(kernel.now)
            yield 3.0
            marks.append(kernel.now)
            yield 2.0
            marks.append(kernel.now)

        kernel.spawn(worker())
        kernel.run()
        assert marks == [0.0, 3.0, 5.0]
        assert kernel.all_finished()

    def test_process_return_value_captured(self):
        kernel = SimulationKernel()

        def worker():
            yield 1.0
            return 42

        process = kernel.spawn(worker())
        kernel.run()
        assert process.finished and process.result == 42

    def test_unsupported_yield_raises(self):
        kernel = SimulationKernel()

        def worker():
            yield "nonsense"

        kernel.spawn(worker())
        with pytest.raises(TypeError):
            kernel.run()

    def test_many_interleaved_processes(self):
        kernel = SimulationKernel()
        completions = []

        def worker(delay, name):
            yield delay
            completions.append((kernel.now, name))

        for i in range(10):
            kernel.spawn(worker(10 - i, f"w{i}"), name=f"w{i}")
        kernel.run()
        assert [name for _, name in completions] == [f"w{9 - i}" for i in range(10)]


class TestResources:
    def test_resource_limits_concurrency(self):
        kernel = SimulationKernel()
        resource = kernel.resource(capacity=2, name="workers")
        finish_times = []

        def task():
            yield kernel.acquire(resource)
            yield 10.0
            yield kernel.release(resource)
            finish_times.append(kernel.now)

        for _ in range(4):
            kernel.spawn(task())
        kernel.run()
        # Two run immediately, two must wait for a slot.
        assert sorted(finish_times) == [10.0, 10.0, 20.0, 20.0]

    def test_utilization_accounting(self):
        kernel = SimulationKernel()
        resource = kernel.resource(capacity=1)

        def task():
            yield kernel.acquire(resource)
            yield 5.0
            yield kernel.release(resource)
            yield 5.0  # idle tail

        kernel.spawn(task())
        kernel.run()
        assert resource.utilization() == pytest.approx(0.5, abs=0.05)

    def test_release_without_acquire_raises(self):
        kernel = SimulationKernel()
        resource = kernel.resource(capacity=1)

        def bad():
            yield kernel.release(resource)

        kernel.spawn(bad())
        with pytest.raises(RuntimeError):
            kernel.run()

    def test_invalid_capacity(self):
        kernel = SimulationKernel()
        with pytest.raises(ValueError):
            kernel.resource(capacity=0)
