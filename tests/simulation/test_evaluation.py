"""Tests that the evaluation drivers reproduce the paper's headline shapes."""

import pytest

from repro.simulation.evaluation import (
    TABLE3_EXPERIMENTS,
    run_figure3_series,
    run_figure5_multitenancy,
    run_full_table3,
    run_table3_experiment,
    run_trigger_throughput,
)
from repro.simulation.workload import (
    USE_CASE_PROFILES,
    PoissonArrivalProcess,
    SyntheticEventGenerator,
    use_case_workload,
)
from repro.simulation.kernel import SimulationKernel

#: Paper Table III values used as reference shapes (producer throughput,
#: local client, events/s).
PAPER_LOCAL_PRODUCER_THROUGHPUT = {
    1: 4_289_000, 2: 195_000, 3: 161_000, 4: 65_000, 5: 43_000,
    6: 202_000, 7: 238_000, 8: 319_000, 9: 246_000,
}


@pytest.fixture(scope="module")
def table3():
    return {row.config.index: row for row in run_full_table3()}


class TestTable3:
    def test_nine_experiments_defined(self):
        assert [c.index for c in TABLE3_EXPERIMENTS] == list(range(1, 10))

    def test_throughput_within_25_percent_of_paper(self, table3):
        for index, paper_value in PAPER_LOCAL_PRODUCER_THROUGHPUT.items():
            measured = table3[index].local.producer_throughput
            assert measured == pytest.approx(paper_value, rel=0.25), f"exp {index}"

    def test_headline_rate_over_4_2M_produced_9_6M_consumed(self, table3):
        assert table3[1].local.producer_throughput >= 4.2e6
        assert table3[1].remote.producer_throughput >= 3.5e6
        assert table3[1].local.consumer_throughput >= 9.6e6
        assert table3[1].remote.consumer_throughput >= 9.6e6

    def test_consumers_read_roughly_twice_as_fast_as_producers(self, table3):
        row = table3[2]
        assert 1.5 <= row.local.consumer_throughput / row.local.producer_throughput <= 2.5

    def test_acks_degrade_throughput_in_order(self, table3):
        assert (
            table3[2].local.producer_throughput
            > table3[3].local.producer_throughput
            > table3[4].local.producer_throughput
        )
        # acks=all costs roughly 3x (195K -> 65K in the paper).
        assert table3[2].local.producer_throughput / table3[4].local.producer_throughput == \
            pytest.approx(3.0, rel=0.2)

    def test_acks_increase_latency(self, table3):
        assert table3[3].local.median_latency_ms > table3[2].local.median_latency_ms
        assert table3[4].local.median_latency_ms > table3[3].local.median_latency_ms + 50

    def test_larger_events_lower_throughput(self, table3):
        assert (
            table3[1].local.producer_throughput
            > table3[2].local.producer_throughput
            > table3[5].local.producer_throughput
        )

    def test_partitions_raise_tail_latency(self, table3):
        assert table3[6].local.p99_latency_ms > table3[2].local.p99_latency_ms + 80
        assert table3[6].local.median_latency_ms < table3[2].local.median_latency_ms

    def test_scale_up_improves_local_more_than_remote(self, table3):
        local_gain = (
            table3[7].local.producer_throughput / table3[6].local.producer_throughput
        )
        remote_gain = (
            table3[7].remote.producer_throughput / table3[6].remote.producer_throughput
        )
        assert local_gain > remote_gain
        assert local_gain >= 1.1

    def test_scale_out_beats_scale_up(self, table3):
        assert table3[8].local.producer_throughput > table3[7].local.producer_throughput
        assert table3[8].remote.producer_throughput > table3[7].remote.producer_throughput
        assert table3[8].remote.median_latency_ms < table3[7].remote.median_latency_ms

    def test_replication_4_costs_writes_not_reads(self, table3):
        write_ratio = table3[9].local.producer_throughput / table3[8].local.producer_throughput
        read_ratio = table3[9].local.consumer_throughput / table3[8].local.consumer_throughput
        assert 0.7 <= write_ratio <= 0.85
        assert read_ratio == pytest.approx(1.0, abs=0.02)

    def test_remote_median_latency_reflects_wan_rtt(self, table3):
        for index in (2, 3, 5, 6):
            delta = (
                table3[index].remote.median_latency_ms
                - table3[index].local.median_latency_ms
            )
            assert 20.0 <= delta <= 50.0

    def test_as_dict_contains_all_columns(self, table3):
        row = table3[2].as_dict()
        for column in ("local_prod_thru", "local_med_lat_ms", "local_p99_lat_ms",
                       "local_cons_thru", "remote_prod_thru", "remote_cons_thru"):
            assert column in row

    def test_fewer_producers_lower_throughput_and_latency(self):
        config = TABLE3_EXPERIMENTS[1]
        few = run_table3_experiment(config, num_producers=20)
        many = run_table3_experiment(config, num_producers=100)
        assert few.local.producer_throughput < many.local.producer_throughput
        assert few.local.median_latency_ms < many.local.median_latency_ms


class TestFigure3:
    def test_six_baseline_curves(self):
        series = run_figure3_series()
        assert sorted(series) == [1, 2, 3, 4, 5, 6]
        for points in series.values():
            assert [p.num_producers for p in points] == [20, 40, 60, 80, 100]

    def test_throughput_monotone_and_latency_rises(self):
        series = run_figure3_series()
        for points in series.values():
            throughputs = [p.throughput for p in points]
            medians = [p.median_latency_ms for p in points]
            assert all(a <= b + 1e-6 for a, b in zip(throughputs, throughputs[1:]))
            assert medians[-1] >= medians[0]

    def test_32B_curve_has_highest_throughput(self):
        series = run_figure3_series()
        assert max(p.throughput for p in series[1]) > 3e6
        assert max(p.throughput for p in series[5]) < 1e5


class TestFigure5:
    def test_producer_saturates_at_four_topics(self):
        points = {p.num_topics: p for p in run_figure5_multitenancy()}
        assert points[4].producer_throughput > points[1].producer_throughput * 2.5
        # Flat beyond four topics.
        assert points[8].producer_throughput == pytest.approx(
            points[4].producer_throughput, rel=0.02
        )
        assert points[32].producer_throughput == pytest.approx(
            points[4].producer_throughput, rel=0.02
        )
        # Near the paper's 273K events/s plateau.
        assert points[4].producer_throughput == pytest.approx(273_000, rel=0.25)

    def test_consumer_saturates_at_sixteen_topics(self):
        points = {p.num_topics: p for p in run_figure5_multitenancy()}
        assert points[16].consumer_throughput > points[4].consumer_throughput
        assert points[32].consumer_throughput == pytest.approx(
            points[16].consumer_throughput, rel=0.02
        )
        assert points[16].consumer_throughput == pytest.approx(846_000, rel=0.25)


class TestTriggerThroughput:
    def test_paper_magnitudes(self):
        points = {
            (p.partitions, p.event_size_bytes): p.events_per_second
            for p in run_trigger_throughput()
        }
        assert points[(1, 32)] == pytest.approx(22_000, rel=0.2)
        assert points[(1, 1024)] == pytest.approx(7_000, rel=0.25)
        assert points[(1, 4096)] == pytest.approx(2_000, rel=0.25)
        assert points[(8, 32)] == pytest.approx(147_000, rel=0.25)
        assert points[(8, 1024)] == pytest.approx(39_000, rel=0.3)
        assert points[(8, 4096)] == pytest.approx(12_000, rel=0.25)

    def test_eight_partitions_roughly_six_times_faster(self):
        points = {
            (p.partitions, p.event_size_bytes): p.events_per_second
            for p in run_trigger_throughput()
        }
        for size in (32, 1024, 4096):
            ratio = points[(8, size)] / points[(1, size)]
            assert 5.0 <= ratio <= 7.0


class TestWorkloadGenerators:
    def test_synthetic_event_size_close_to_target(self):
        from repro.fabric.record import EventRecord

        generator = SyntheticEventGenerator(1024)
        sizes = [EventRecord(value=generator.next_event()).size_bytes() for _ in range(20)]
        assert all(800 <= s <= 1400 for s in sizes)

    def test_use_case_profiles_match_table1(self):
        assert set(USE_CASE_PROFILES) == {
            "sdl", "data_automation", "scheduling", "epidemic", "workflow",
        }
        assert USE_CASE_PROFILES["scheduling"].events_per_hour_per_resource == 1e4
        assert USE_CASE_PROFILES["data_automation"].mean_event_size_bytes == 4096
        assert USE_CASE_PROFILES["sdl"].mean_event_size_bytes == 512

    def test_use_case_workload_rate(self):
        events = list(use_case_workload("scheduling", num_resources=2,
                                        duration_seconds=60.0))
        expected = USE_CASE_PROFILES["scheduling"].events_per_second(2) * 60.0
        assert len(events) == pytest.approx(expected, rel=0.4)
        assert all(e["time"] < 60.0 for e in events)

    def test_poisson_arrival_process_on_kernel(self):
        kernel = SimulationKernel()
        arrivals = []
        PoissonArrivalProcess(
            kernel, rate_per_second=5.0, callback=lambda t, e: arrivals.append(t),
            duration_seconds=100.0,
        )
        kernel.run(until=100.0)
        assert len(arrivals) == pytest.approx(500, rel=0.3)
        assert all(0 <= t <= 100.0 for t in arrivals)

    def test_generator_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            SyntheticEventGenerator(4)
