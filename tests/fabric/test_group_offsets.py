"""Tests for the consumer-group coordinator and offset store."""

import pytest

from repro.fabric.errors import IllegalGenerationError
from repro.fabric.group import ConsumerGroupCoordinator, range_assign
from repro.fabric.offsets import OffsetStore


class TestRangeAssign:
    def test_assignment_covers_all_partitions_exactly_once(self):
        members = ["m1", "m2", "m3"]
        partitions = [("t", i) for i in range(8)]
        assignment = range_assign(members, partitions)
        assigned = [tp for tps in assignment.values() for tp in tps]
        assert sorted(assigned) == sorted(partitions)
        assert len(assigned) == len(set(assigned))

    def test_balanced_within_one_partition(self):
        assignment = range_assign(["a", "b", "c"], [("t", i) for i in range(10)])
        sizes = sorted(len(v) for v in assignment.values())
        assert sizes == [3, 3, 4]

    def test_more_members_than_partitions_leaves_some_idle(self):
        assignment = range_assign(["a", "b", "c", "d"], [("t", 0), ("t", 1)])
        empty = [m for m, tps in assignment.items() if not tps]
        assert len(empty) == 2

    def test_empty_inputs(self):
        assert range_assign([], [("t", 0)]) == {}
        assert range_assign(["a"], []) == {"a": []}


class TestCoordinator:
    def test_join_assigns_all_partitions_to_single_member(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        member, generation, assignment = coordinator.join("g", "c1", ["t"], partitions)
        assert generation == 1
        assert sorted(assignment) == partitions

    def test_second_join_rebalances_and_bumps_generation(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, generation, _ = coordinator.join("g", "c2", ["t"], partitions)
        assert generation == 2
        a1 = set(coordinator.assignment("g", m1))
        a2 = set(coordinator.assignment("g", m2))
        assert a1 | a2 == set(partitions)
        assert a1.isdisjoint(a2)

    def test_leave_redistributes_partitions(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        coordinator.leave("g", m1, partitions)
        assert sorted(coordinator.assignment("g", m2)) == partitions

    def test_heartbeat_with_stale_generation_rejected(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", 0)]
        m1, gen1, _ = coordinator.join("g", "c1", ["t"], partitions)
        coordinator.join("g", "c2", ["t"], partitions)
        with pytest.raises(IllegalGenerationError):
            coordinator.heartbeat("g", m1, gen1)

    def test_expired_members_are_evicted(self):
        coordinator = ConsumerGroupCoordinator(session_timeout=10.0)
        partitions = [("t", 0), ("t", 1)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        member = coordinator._groups["g"].members[m1]
        member.last_heartbeat -= 100.0
        expired = coordinator.expire_members("g", partitions)
        assert expired == [m1]
        assert sorted(coordinator.assignment("g", m2)) == partitions

    def test_describe_unknown_group(self):
        coordinator = ConsumerGroupCoordinator()
        assert coordinator.describe("nope")["members"] == []
        assert coordinator.generation("nope") == 0

    def test_validate_generation_unknown_member(self):
        coordinator = ConsumerGroupCoordinator()
        coordinator.join("g", "c1", ["t"], [("t", 0)])
        with pytest.raises(IllegalGenerationError):
            coordinator.validate_generation("g", "ghost", 1)


class TestOffsetStore:
    def test_commit_and_read_back(self):
        store = OffsetStore()
        store.commit("g", "t", 0, 42, metadata="checkpoint")
        assert store.committed("g", "t", 0) == 42
        entry = store.committed_entry("g", "t", 0)
        assert entry.metadata == "checkpoint"

    def test_unknown_group_returns_none(self):
        assert OffsetStore().committed("g", "t", 0) is None

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            OffsetStore().commit("g", "t", 0, -1)

    def test_group_offsets_filters_by_group(self):
        store = OffsetStore()
        store.commit("g1", "t", 0, 1)
        store.commit("g1", "t", 1, 2)
        store.commit("g2", "t", 0, 9)
        assert store.group_offsets("g1") == {("t", 0): 1, ("t", 1): 2}

    def test_reset_group_removes_commits(self):
        store = OffsetStore()
        store.commit("g", "a", 0, 1)
        store.commit("g", "b", 0, 2)
        assert store.reset_group("g", topic="a") == 1
        assert store.committed("g", "a", 0) is None
        assert store.committed("g", "b", 0) == 2

    def test_lag_computation(self):
        store = OffsetStore()
        assert store.lag("g", "t", 0, log_end_offset=10) == 10
        store.commit("g", "t", 0, 4)
        assert store.lag("g", "t", 0, log_end_offset=10) == 6
        store.commit("g", "t", 0, 15)
        assert store.lag("g", "t", 0, log_end_offset=10) == 0
