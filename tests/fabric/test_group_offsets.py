"""Tests for the consumer-group coordinator and offset store."""

import pytest

from repro.common.clock import ManualClock
from repro.fabric.errors import IllegalGenerationError
from repro.fabric.group import (
    PHASE_REVOKING,
    PHASE_STABLE,
    ConsumerGroupCoordinator,
    range_assign,
    sticky_cooperative_assign,
)
from repro.fabric.offsets import OffsetStore


def settle(coordinator, group_id):
    """Acknowledge the current generation for every member until stable.

    Stands in for the consumers' poll loops: each member syncs the
    revoke-phase generation, and the last ack promotes the pending target.
    """
    for _ in range(8):
        if coordinator.rebalance_phase(group_id) == PHASE_STABLE:
            return
        generation = coordinator.generation(group_id)
        for member_id in coordinator.members(group_id):
            coordinator.sync(group_id, member_id, generation)
    raise AssertionError(f"group {group_id} did not settle")


class TestRangeAssign:
    def test_assignment_covers_all_partitions_exactly_once(self):
        members = ["m1", "m2", "m3"]
        partitions = [("t", i) for i in range(8)]
        assignment = range_assign(members, partitions)
        assigned = [tp for tps in assignment.values() for tp in tps]
        assert sorted(assigned) == sorted(partitions)
        assert len(assigned) == len(set(assigned))

    def test_balanced_within_one_partition(self):
        assignment = range_assign(["a", "b", "c"], [("t", i) for i in range(10)])
        sizes = sorted(len(v) for v in assignment.values())
        assert sizes == [3, 3, 4]

    def test_more_members_than_partitions_leaves_some_idle(self):
        assignment = range_assign(["a", "b", "c", "d"], [("t", 0), ("t", 1)])
        empty = [m for m, tps in assignment.items() if not tps]
        assert len(empty) == 2

    def test_empty_inputs(self):
        assert range_assign([], [("t", 0)]) == {}
        assert range_assign(["a"], []) == {"a": []}


class TestStickyAssign:
    def test_join_moves_only_the_minimal_delta(self):
        partitions = [("t", i) for i in range(16)]
        prior = {f"m{i}": partitions[i * 4 : (i + 1) * 4] for i in range(4)}
        members = list(prior) + ["m4"]
        target = sticky_cooperative_assign(members, partitions, prior)
        moved = sum(
            len(set(prior[m]) - set(target[m])) for m in prior
        )
        assert moved <= 4  # ceil(16/4): far below the 16 an eager reshuffle risks
        for m in prior:  # survivors only ever *lose* partitions, never swap
            assert set(target[m]) <= set(prior[m])
        assigned = sorted(tp for tps in target.values() for tp in tps)
        assert assigned == sorted(partitions)
        sizes = sorted(len(tps) for tps in target.values())
        assert sizes[-1] - sizes[0] <= 1

    def test_leave_keeps_survivors_intact(self):
        partitions = [("t", i) for i in range(9)]
        prior = {"a": partitions[0:3], "b": partitions[3:6], "c": partitions[6:9]}
        target = sticky_cooperative_assign(["a", "b"], partitions, prior)
        assert set(target["a"]) >= set(prior["a"])
        assert set(target["b"]) >= set(prior["b"])
        assigned = sorted(tp for tps in target.values() for tp in tps)
        assert assigned == sorted(partitions)

    def test_under_quota_member_keeps_everything(self):
        partitions = [("t", i) for i in range(6)]
        prior = {"a": partitions[:2], "b": []}
        target = sticky_cooperative_assign(["a", "b", "c"], partitions, prior)
        assert set(target["a"]) == set(prior["a"])

    def test_vanished_partitions_are_dropped(self):
        prior = {"a": [("t", 0), ("t", 1), ("t", 2)]}
        target = sticky_cooperative_assign(["a"], [("t", 0), ("t", 1)], prior)
        assert sorted(target["a"]) == [("t", 0), ("t", 1)]

    def test_empty_inputs(self):
        assert sticky_cooperative_assign([], [("t", 0)], {}) == {}
        assert sticky_cooperative_assign(["a"], [], {"a": [("t", 0)]}) == {"a": []}


class TestCoordinator:
    def test_join_assigns_all_partitions_to_single_member(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        member, generation, assignment = coordinator.join("g", "c1", ["t"], partitions)
        assert generation == 1
        assert sorted(assignment) == partitions

    def test_second_join_revokes_then_assigns_cooperatively(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        before = set(coordinator.assignment("g", m1))
        m2, generation, a2_initial = coordinator.join("g", "c2", ["t"], partitions)
        # Revoke phase: the generation bumped, the incumbent shrank to the
        # partitions it retains and keeps serving them; the new member
        # waits for the assign phase.
        assert generation == 2
        assert coordinator.rebalance_phase("g") == PHASE_REVOKING
        assert a2_initial == []
        retained = set(coordinator.assignment("g", m1))
        assert retained < before and len(retained) == 2
        # Both members acknowledge: the pending target is promoted under a
        # fresh generation and the freed partitions land on the new member.
        settle(coordinator, "g")
        assert coordinator.generation("g") == 3
        a1 = set(coordinator.assignment("g", m1))
        a2 = set(coordinator.assignment("g", m2))
        assert a1 == retained  # sticky: the incumbent kept what it retained
        assert a1 | a2 == set(partitions)
        assert a1.isdisjoint(a2)

    def test_join_during_unacked_revoke_parks_owned_partitions(self):
        """Regression: a rebalance beginning while a prior revoke phase is
        still unacknowledged must not treat the laggard's unreleased
        partitions as free — granting them would create dual ownership
        and let the laggard's commit-on-revoke rewind the new owner."""
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        a, _, _ = coordinator.join("g", "a", ["t"], partitions)
        b, _, _ = coordinator.join("g", "b", ["t"], partitions)
        coordinator.sync("g", b, coordinator.generation("g"))  # b acks; a lags
        c, _, _ = coordinator.join("g", "c", ["t"], partitions)
        coordinator.sync("g", c, coordinator.generation("g"))
        coordinator.sync("g", b, coordinator.generation("g"))
        # Everything a may still be fetching stays parked with a.
        assert coordinator.rebalance_phase("g") == PHASE_REVOKING
        assert coordinator.assignment("g", b) == []
        assert coordinator.assignment("g", c) == []
        # Only once a acknowledges do the freed partitions move.
        settle(coordinator, "g")
        described = coordinator.describe("g")["members"]
        assigned = sorted(tp for tps in described.values() for tp in tps)
        assert assigned == partitions
        assert len(described[a]) == 2  # sticky: a kept its quota

    def test_leave_redistributes_partitions_in_one_phase(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", i) for i in range(4)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        settle(coordinator, "g")
        kept = set(coordinator.assignment("g", m2))
        coordinator.leave("g", m1, partitions)
        # A graceful leave only frees partitions: no revoke phase, and the
        # survivor keeps everything it had plus the freed delta.
        assert coordinator.rebalance_phase("g") == PHASE_STABLE
        assert kept <= set(coordinator.assignment("g", m2))
        assert sorted(coordinator.assignment("g", m2)) == partitions

    def test_heartbeat_with_stale_generation_rejected(self):
        coordinator = ConsumerGroupCoordinator()
        partitions = [("t", 0)]
        m1, gen1, _ = coordinator.join("g", "c1", ["t"], partitions)
        coordinator.join("g", "c2", ["t"], partitions)
        with pytest.raises(IllegalGenerationError):
            coordinator.heartbeat("g", m1, gen1)

    def test_expired_members_are_evicted(self):
        clock = ManualClock()
        coordinator = ConsumerGroupCoordinator(session_timeout=10.0, clock=clock)
        partitions = [("t", 0), ("t", 1)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        settle(coordinator, "g")
        clock.advance(5.0)
        coordinator.heartbeat("g", m2, coordinator.generation("g"))
        clock.advance(8.0)  # m1's last heartbeat is now 13s old, m2's 8s
        expired = coordinator.expire_members("g", partitions)
        assert expired == [m1]
        assert sorted(coordinator.assignment("g", m2)) == partitions

    def test_generation_read_sweeps_expired_members(self):
        """Liveness without an external reaper: the generation read the
        consumers poll evicts members whose session timed out."""
        clock = ManualClock()
        coordinator = ConsumerGroupCoordinator(session_timeout=10.0, clock=clock)
        partitions = [("t", 0), ("t", 1)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        settle(coordinator, "g")
        generation = coordinator.generation("g")
        sticky_before = set(coordinator.assignment("g", m2))
        clock.advance(6.0)
        coordinator.heartbeat("g", m2, generation)
        clock.advance(6.0)  # m1 silent for 12s > 10s session timeout
        coordinator.generation("g")
        assert coordinator.members("g") == [m2]
        # The dead member's partitions re-stick onto the survivor, which
        # keeps everything it already had (single-phase rebalance).
        assert coordinator.rebalance_phase("g") == PHASE_STABLE
        assert sticky_before <= set(coordinator.assignment("g", m2))
        assert sorted(coordinator.assignment("g", m2)) == partitions

    def test_per_member_session_timeout_overrides_default(self):
        clock = ManualClock()
        coordinator = ConsumerGroupCoordinator(session_timeout=30.0, clock=clock)
        partitions = [("t", 0), ("t", 1)]
        m1, _, _ = coordinator.join("g", "c1", ["t"], partitions, session_timeout=5.0)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        settle(coordinator, "g")
        clock.advance(6.0)  # beyond m1's 5s timeout, well under m2's 30s default
        assert coordinator.expire_members("g") == [m1]
        assert coordinator.members("g") == [m2]

    def test_evicted_member_stale_commit_is_rejected(self):
        """Coordinator session expiry end to end: the member that missed
        its heartbeats is evicted, its partitions re-stick to survivors,
        and any commit it still tries is fenced."""
        clock = ManualClock()
        coordinator = ConsumerGroupCoordinator(session_timeout=10.0, clock=clock)
        partitions = [("t", i) for i in range(4)]
        m1, gen1, _ = coordinator.join("g", "c1", ["t"], partitions)
        m2, _, _ = coordinator.join("g", "c2", ["t"], partitions)
        settle(coordinator, "g")
        generation = coordinator.generation("g")
        dead_partitions = set(coordinator.assignment("g", m1))
        clock.advance(5.0)
        coordinator.heartbeat("g", m2, generation)
        clock.advance(7.0)
        assert coordinator.expire_members("g") == [m1]
        # Survivor keeps its sticky set and absorbs the dead member's.
        assert sorted(coordinator.assignment("g", m2)) == partitions
        assert dead_partitions <= set(coordinator.assignment("g", m2))
        # The zombie's commit path is fenced at generation validation.
        with pytest.raises(IllegalGenerationError):
            coordinator.validate_generation("g", m1, generation)
        # And so is its heartbeat: it must rejoin as a new member.
        with pytest.raises(IllegalGenerationError):
            coordinator.heartbeat("g", m1, generation)

    def test_describe_unknown_group(self):
        coordinator = ConsumerGroupCoordinator()
        assert coordinator.describe("nope")["members"] == []
        assert coordinator.generation("nope") == 0

    def test_validate_generation_unknown_member(self):
        coordinator = ConsumerGroupCoordinator()
        coordinator.join("g", "c1", ["t"], [("t", 0)])
        with pytest.raises(IllegalGenerationError):
            coordinator.validate_generation("g", "ghost", 1)


class TestOffsetStore:
    def test_commit_and_read_back(self):
        store = OffsetStore()
        store.commit("g", "t", 0, 42, metadata="checkpoint")
        assert store.committed("g", "t", 0) == 42
        entry = store.committed_entry("g", "t", 0)
        assert entry.metadata == "checkpoint"

    def test_unknown_group_returns_none(self):
        assert OffsetStore().committed("g", "t", 0) is None

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            OffsetStore().commit("g", "t", 0, -1)

    def test_group_offsets_filters_by_group(self):
        store = OffsetStore()
        store.commit("g1", "t", 0, 1)
        store.commit("g1", "t", 1, 2)
        store.commit("g2", "t", 0, 9)
        assert store.group_offsets("g1") == {("t", 0): 1, ("t", 1): 2}

    def test_reset_group_removes_commits(self):
        store = OffsetStore()
        store.commit("g", "a", 0, 1)
        store.commit("g", "b", 0, 2)
        assert store.reset_group("g", topic="a") == 1
        assert store.committed("g", "a", 0) is None
        assert store.committed("g", "b", 0) == 2

    def test_lag_computation(self):
        store = OffsetStore()
        assert store.lag("g", "t", 0, log_end_offset=10) == 10
        store.commit("g", "t", 0, 4)
        assert store.lag("g", "t", 0, log_end_offset=10) == 6
        store.commit("g", "t", 0, 15)
        assert store.lag("g", "t", 0, log_end_offset=10) == 0
