"""Tests for the fabric cluster: topic management, produce/fetch, failover."""

import pytest

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import (
    AuthorizationError,
    BrokerUnavailableError,
    NotEnoughReplicasError,
    TopicAlreadyExistsError,
    UnknownTopicError,
)
from repro.fabric.record import EventRecord
from repro.fabric.topic import TopicConfig


@pytest.fixture
def cluster() -> FabricCluster:
    return FabricCluster(num_brokers=2)


class TestTopicManagement:
    def test_create_and_list_topics(self, cluster):
        cluster.admin().create_topic("a")
        cluster.admin().create_topic("b", TopicConfig(num_partitions=3))
        assert cluster.topics() == ["a", "b"]
        assert cluster.topic("b").num_partitions == 3

    def test_duplicate_topic_rejected(self, cluster):
        cluster.admin().create_topic("a")
        with pytest.raises(TopicAlreadyExistsError):
            cluster.admin().create_topic("a")

    def test_unknown_topic_raises(self, cluster):
        with pytest.raises(UnknownTopicError):
            cluster.topic("missing")

    def test_replication_factor_capped_at_broker_count(self, cluster):
        topic = cluster.admin().create_topic("a", TopicConfig(replication_factor=5))
        assert topic.config.replication_factor == 2

    def test_delete_topic_removes_replicas(self, cluster):
        cluster.admin().create_topic("a", TopicConfig(num_partitions=2))
        cluster.admin().delete_topic("a")
        assert "a" not in cluster.topics()
        for broker in cluster.brokers.values():
            assert not broker.has_replica("a", 0)

    def test_set_partitions_places_new_replicas(self, cluster):
        cluster.admin().create_topic("a", TopicConfig(num_partitions=1))
        cluster.admin().set_partitions("a", 4)
        assert cluster.topic("a").num_partitions == 4
        assert len(cluster.partitions_for("a")) == 4
        # New partitions must be producible immediately.
        cluster.append("a", 3, EventRecord(value="x"))

    def test_replica_placement_spreads_across_brokers(self):
        cluster = FabricCluster(num_brokers=4)
        cluster.admin().create_topic("a", TopicConfig(num_partitions=8, replication_factor=2))
        leaders = {
            a.leader for a in cluster.replication.assignments_for_topic("a")
        }
        assert len(leaders) == 4  # every broker leads something


class TestProduceFetch:
    def test_append_returns_metadata_with_offset(self, cluster):
        cluster.admin().create_topic("t")
        md0 = cluster.append("t", 0, EventRecord(value="a"))
        md1 = cluster.append("t", 0, EventRecord(value="b"))
        assert (md0.offset, md1.offset) == (0, 1)
        assert md0.topic == "t"

    def test_fetch_returns_appended_records_in_order(self, cluster):
        cluster.admin().create_topic("t")
        for i in range(5):
            cluster.append("t", 0, EventRecord(value=i))
        values = [r.value for r in cluster.fetch("t", 0, 0)]
        assert values == [0, 1, 2, 3, 4]

    def test_end_and_beginning_offsets(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(num_partitions=2))
        cluster.append("t", 0, EventRecord(value=1))
        cluster.append("t", 1, EventRecord(value=2))
        cluster.append("t", 1, EventRecord(value=3))
        assert cluster.end_offsets("t") == {0: 1, 1: 2}
        assert cluster.beginning_offsets("t") == {0: 0, 1: 0}

    def test_acks_all_succeeds_with_full_isr(self, cluster):
        cluster.admin().create_topic(
            "t", TopicConfig(replication_factor=2, min_insync_replicas=2)
        )
        md = cluster.append("t", 0, EventRecord(value="x"), acks="all")
        assert md.offset == 0

    def test_acks_all_fails_when_isr_below_minimum(self, cluster):
        cluster.admin().create_topic(
            "t", TopicConfig(replication_factor=2, min_insync_replicas=2)
        )
        assignment = cluster.replication.assignment("t", 0)
        follower = [b for b in assignment.replicas if b != assignment.leader][0]
        cluster.brokers[follower].shutdown()
        with pytest.raises(NotEnoughReplicasError):
            cluster.append("t", 0, EventRecord(value="x"), acks="all")

    def test_records_are_replicated_to_followers(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(replication_factor=2))
        for i in range(5):
            cluster.append("t", 0, EventRecord(value=i))
        assignment = cluster.replication.assignment("t", 0)
        for broker_id in assignment.replicas:
            log = cluster.brokers[broker_id].replica("t", 0)
            assert log.log_end_offset == 5


class TestFailover:
    def test_leader_failure_elects_new_leader_and_keeps_data(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(replication_factor=2))
        for i in range(10):
            cluster.append("t", 0, EventRecord(value=i))
        old_leader = cluster.replication.assignment("t", 0).leader
        cluster.admin().fail_broker(old_leader)
        new_leader = cluster.replication.assignment("t", 0).leader
        assert new_leader != old_leader
        # Reads and writes keep working, previously acked data survives.
        md = cluster.append("t", 0, EventRecord(value="post-failover"))
        assert md.offset == 10
        values = [r.value for r in cluster.fetch("t", 0, 0, max_records=100)]
        assert values == list(range(10)) + ["post-failover"]

    def test_all_replicas_down_raises(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(replication_factor=2))
        cluster.admin().fail_broker(0)
        cluster.admin().fail_broker(1)
        with pytest.raises(BrokerUnavailableError):
            cluster.append("t", 0, EventRecord(value="x"))

    def test_restored_broker_resyncs_missing_records(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(replication_factor=2))
        assignment = cluster.replication.assignment("t", 0)
        follower = [b for b in assignment.replicas if b != assignment.leader][0]
        cluster.admin().fail_broker(follower)
        for i in range(5):
            cluster.append("t", 0, EventRecord(value=i))
        cluster.admin().restore_broker(follower)
        assert cluster.brokers[follower].replica("t", 0).log_end_offset == 5

    def test_failover_updates_isr(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(replication_factor=2))
        leader = cluster.replication.assignment("t", 0).leader
        cluster.admin().fail_broker(leader)
        cluster.append("t", 0, EventRecord(value="x"))
        isr = cluster.replication.assignment("t", 0).isr
        assert leader not in isr


class TestAuthorization:
    def test_authorizer_denies_produce_and_consume(self):
        def deny_bob(principal, operation, topic):
            return principal != "bob"

        cluster = FabricCluster(num_brokers=2, authorizer=deny_bob)
        cluster.admin().create_topic("t")
        cluster.append("t", 0, EventRecord(value=1), principal="alice")
        with pytest.raises(AuthorizationError):
            cluster.append("t", 0, EventRecord(value=2), principal="bob")
        with pytest.raises(AuthorizationError):
            cluster.fetch("t", 0, 0, principal="bob")


class TestRetentionIntegration:
    def test_run_retention_truncates_brokers_too(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(retention_seconds=0.0))
        for i in range(5):
            cluster.append("t", 0, EventRecord(value=i))
        removed = cluster.admin().run_retention("t")
        assert removed["t"][0] == 5
        assert cluster.fetch("t", 0, cluster.beginning_offsets("t")[0]) == []

    def test_persistence_sink_receives_records(self, cluster):
        seen = []
        cluster.admin().add_persistence_sink(lambda t, p, r: seen.append((t, p, r.offset)))
        cluster.admin().create_topic("p", TopicConfig(persist_to_store=True))
        cluster.admin().create_topic("np", TopicConfig(persist_to_store=False))
        cluster.append("p", 0, EventRecord(value=1))
        cluster.append("np", 0, EventRecord(value=2))
        assert seen == [("p", 0, 0)]


class TestLag:
    def test_total_lag_counts_uncommitted_records(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(num_partitions=2))
        for i in range(6):
            cluster.append("t", i % 2, EventRecord(value=i))
        assert cluster.total_lag("triggers", "t") == 6
        cluster.offsets.commit("triggers", "t", 0, 2)
        assert cluster.total_lag("triggers", "t") == 4
