"""Property tests for the segmented partition log.

Two complementary suites, both soak-profile aware (no pinned
``max_examples`` — the nightly ``HYPOTHESIS_PROFILE=soak`` run hammers
them with a much larger budget, see ``tests/conftest.py``):

* **Differential**: the segmented :class:`PartitionLog` (driven with tiny
  segments so every sequence crosses many seal/roll boundaries) and the
  pre-segment flat reference (:class:`repro.fabric._compat.flatlog.FlatPartitionLog`)
  execute the same operation sequence; every externally observable
  answer — offsets, fetch slices, byte usage, retention outcomes,
  timestamp lookups — must be identical.
* **Invariants**: contiguous offsets across segment boundaries, retention
  never resurrecting or reordering offsets, segment metadata consistent
  with the records it covers.
"""

import hypothesis.strategies as st
from hypothesis import given

from repro.fabric.errors import OffsetOutOfRangeError
from repro.fabric._compat.flatlog import (
    FlatPartitionLog,
    flat_enforce_size_retention,
    flat_enforce_time_retention,
)
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord
from repro.fabric.retention import (
    compact,
    enforce_size_retention,
    enforce_time_retention,
)

# Operations carry small integer parameters that the interpreter below
# scales into offsets/cutoffs relative to the log's current state, so a
# shrunk failing example stays meaningful.
OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=-1, max_value=4)),
        st.tuples(st.just("batch"), st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=12)),
        st.tuples(st.just("time_retention"), st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("size_retention"), st.integers(min_value=0, max_value=1500)),
        st.tuples(st.just("compact"), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


def _run(log, operations, *, is_flat):
    """Drive one log through ``operations`` with a deterministic clock."""
    step = 0
    for name, arg in operations:
        step += 1
        when = float(step)
        if name == "append":
            key = None if arg < 0 else f"k{arg}"
            log.append(EventRecord(value=step, key=key), append_time=when)
        elif name == "batch":
            log.append_batch(
                [EventRecord(value=(step, i)) for i in range(arg)], append_time=when
            )
        elif name == "truncate":
            log.truncate_before(log.log_start_offset + arg)
        elif name == "time_retention":
            if is_flat:
                flat_enforce_time_retention(log, retention_seconds=arg, now=float(step))
            else:
                enforce_time_retention(log, retention_seconds=arg, now=float(step))
        elif name == "size_retention":
            if is_flat:
                flat_enforce_size_retention(log, retention_bytes=arg)
            else:
                enforce_size_retention(log, retention_bytes=arg)
        elif name == "compact":
            if is_flat:
                # The flat model has no raceless compaction; single-threaded
                # here, so keep-latest-per-key over a snapshot is equivalent.
                records = list(log.read_all())
                latest = {}
                for stored in records:
                    if stored.key is not None:
                        latest[str(stored.key)] = stored.offset
                log.replace_records(
                    [
                        stored
                        for stored in records
                        if stored.key is None or latest[str(stored.key)] == stored.offset
                    ]
                )
            else:
                compact(log)
    return log


def _observe_fetch(log, offset, max_records, max_bytes):
    try:
        records, used = log.fetch_with_usage(
            offset, max_records=max_records, max_bytes=max_bytes
        )
        return ([(r.offset, r.value) for r in records], used)
    except OffsetOutOfRangeError:
        return "out-of-range"


class TestDifferentialEquivalence:
    @given(operations=OPERATIONS)
    def test_segmented_log_matches_flat_reference(self, operations):
        segmented = _run(
            PartitionLog("t", 0, segment_records=3, segment_bytes=220),
            operations,
            is_flat=False,
        )
        flat = _run(FlatPartitionLog("t", 0), operations, is_flat=True)

        assert segmented.log_start_offset == flat.log_start_offset
        assert segmented.log_end_offset == flat.log_end_offset
        assert len(segmented) == len(flat)
        assert segmented.size_bytes == flat.size_bytes
        assert segmented.total_appended == flat.total_appended
        assert [(r.offset, r.value, r.append_time) for r in segmented.read_all()] == [
            (r.offset, r.value, r.append_time) for r in flat.read_all()
        ]

    @given(operations=OPERATIONS, max_records=st.integers(1, 7))
    def test_fetch_equivalence_at_every_offset(self, operations, max_records):
        segmented = _run(
            PartitionLog("t", 0, segment_records=3, segment_bytes=220),
            operations,
            is_flat=False,
        )
        flat = _run(FlatPartitionLog("t", 0), operations, is_flat=True)
        # Probe one offset beyond both ends too: error behavior must match.
        for offset in range(
            max(0, segmented.log_start_offset - 1), segmented.log_end_offset + 2
        ):
            for max_bytes in (None, 1, 150, 10_000):
                assert _observe_fetch(segmented, offset, max_records, max_bytes) == (
                    _observe_fetch(flat, offset, max_records, max_bytes)
                ), f"fetch({offset}, {max_records}, {max_bytes}) diverged"

    @given(operations=OPERATIONS)
    def test_timestamp_lookup_equivalence(self, operations):
        segmented = _run(
            PartitionLog("t", 0, segment_records=3, segment_bytes=220),
            operations,
            is_flat=False,
        )
        flat = _run(FlatPartitionLog("t", 0), operations, is_flat=True)
        for probe in range(0, len(operations) + 2):
            timestamp = float(probe) - 0.5
            assert segmented.offset_for_timestamp(timestamp) == (
                flat.offset_for_timestamp(timestamp)
            ), f"offset_for_timestamp({timestamp}) diverged"


class TestSegmentInvariants:
    @given(operations=OPERATIONS)
    def test_offsets_contiguous_across_segments_without_compaction(self, operations):
        operations = [op for op in operations if op[0] != "compact"]
        if not operations:
            operations = [("append", -1)]
        log = _run(
            PartitionLog("t", 0, segment_records=3, segment_bytes=220),
            operations,
            is_flat=False,
        )
        offsets = [r.offset for r in log.read_all()]
        # Delete-retention only ever trims a prefix: what remains is one
        # contiguous run ending exactly at the log end, regardless of how
        # many segment boundaries it crosses.
        assert offsets == list(range(log.log_end_offset - len(offsets), log.log_end_offset))

    @given(operations=OPERATIONS)
    def test_retention_never_resurrects_or_reorders(self, operations):
        log = PartitionLog("t", 0, segment_records=3, segment_bytes=220)
        step = 0
        previous_start = 0
        previous_end = 0
        seen_offsets = set()
        for name, arg in operations:
            step += 1
            if name == "append":
                log.append(EventRecord(value=step), append_time=float(step))
            elif name == "batch":
                log.append_batch(
                    [EventRecord(value=(step, i)) for i in range(arg)],
                    append_time=float(step),
                )
            elif name == "truncate":
                log.truncate_before(log.log_start_offset + arg)
            elif name == "time_retention":
                enforce_time_retention(log, retention_seconds=arg, now=float(step))
            elif name == "size_retention":
                enforce_size_retention(log, retention_bytes=arg)
            elif name == "compact":
                compact(log)
            offsets = [r.offset for r in log.read_all()]
            assert offsets == sorted(set(offsets)), "offsets reordered or duplicated"
            assert log.log_start_offset >= previous_start, "log start moved backwards"
            assert log.log_end_offset >= previous_end, "log end moved backwards"
            resurrected = {o for o in offsets if o < log.log_start_offset}
            assert not resurrected, f"offsets below log start resurfaced: {resurrected}"
            never_seen = [o for o in offsets if o not in seen_offsets]
            assert all(o >= previous_end for o in never_seen), (
                f"offsets materialized out of nowhere: {never_seen}"
            )
            previous_start = log.log_start_offset
            previous_end = log.log_end_offset
            seen_offsets.update(offsets)

    @given(operations=OPERATIONS)
    def test_segment_metadata_consistent_with_records(self, operations):
        log = _run(
            PartitionLog("t", 0, segment_records=3, segment_bytes=220),
            operations,
            is_flat=False,
        )
        described = log.describe_segments()
        assert described, "a log always has at least its active segment"
        assert described[-1]["sealed"] is False
        for info, segment in zip(described, log._segments):
            records = list(segment.records)
            assert info["records"] == len(records)
            assert info["size_bytes"] == sum(r.size_bytes() for r in records)
            if records:
                assert info["base_offset"] == records[0].offset
                assert info["end_offset"] == records[-1].offset + 1
                # Time bounds are conservative covers: exact for unsliced
                # segments, inherited (wider) across truncation boundaries.
                assert info["min_append_time"] <= min(r.append_time for r in records)
                assert info["max_append_time"] >= max(r.append_time for r in records)
        bases = [s["base_offset"] for s in described]
        assert bases == sorted(bases)


# --------------------------------------------------------------------- #
# Packed wire round trip
# --------------------------------------------------------------------- #

_JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=8,
)

_EVENTS = st.lists(
    st.builds(
        EventRecord,
        value=_JSON_VALUES | st.binary(max_size=32),
        key=st.none() | st.text(max_size=16) | st.binary(max_size=16),
        headers=st.dictionaries(st.text(max_size=10), st.text(max_size=10), max_size=4),
        timestamp=st.floats(min_value=0.0, max_value=1e12),
    ),
    max_size=12,
)


class TestPackedWireRoundTrip:
    """``EventRecord`` → packed → wire bytes → decode == original."""

    @given(events=_EVENTS)
    def test_round_trip_preserves_every_field(self, events):
        from repro.fabric.record import PackedRecordBatch

        packed = PackedRecordBatch.from_events(
            tuple(events), base_offset=7, append_time=3.0
        )
        decoded = PackedRecordBatch.from_bytes(packed.to_bytes(), base_offset=7)
        assert len(decoded) == len(events)
        for index, original in enumerate(events):
            record = decoded.record_at(index)
            assert record.value == original.value
            assert record.key == original.key
            assert dict(record.headers) == dict(original.headers)
            assert record.timestamp == original.timestamp
            assert decoded.offset_at(index) == packed.offset_at(index)

    @given(events=_EVENTS)
    def test_wire_image_is_deterministic_and_slice_consistent(self, events):
        from repro.fabric.record import PackedRecordBatch

        packed = PackedRecordBatch.from_events(tuple(events), base_offset=0)
        wire = packed.to_bytes()
        assert packed.to_bytes() == wire  # cached encode is stable
        if events:
            part = packed.slice(0, len(events))
            assert part.to_bytes() == wire
