"""Codec round-trip, CRC corruption detection, and replica recovery.

PR 7's integrity contract: every sealed batch carries a CRC32 over its
stored (possibly compressed) body, verified at broker ingress and again
at first decode — a byte flipped anywhere between producer seal and
consumer decode surfaces as :class:`CorruptBatchError`, never as silently
wrong records.  A damaged replica is healed by discarding its log and
re-fetching the leader's CRC-verified chunks
(:meth:`ReplicationManager.recover_replica`).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import CorruptBatchError, UnknownCodecError
from repro.fabric.partition import PartitionLog
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.record import (
    WIRE_HEADER_BYTES,
    EventRecord,
    PackedRecordBatch,
    registered_codecs,
)
from repro.fabric.topic import TopicConfig


def _events(count, value=None):
    return tuple(
        EventRecord(
            value=value if value is not None else {"n": i, "payload": "x" * 40},
            key=f"k{i}",
            headers={"h": str(i)},
            timestamp=float(i),
        )
        for i in range(count)
    )


def _sealed(events, codec, *, base_offset=0):
    packed = PackedRecordBatch.from_events(
        events, base_offset=base_offset, append_time=1.0
    )
    return packed.seal_wire(codec)


# --------------------------------------------------------------------- #
# Round-trip property: codec x payload shape
# --------------------------------------------------------------------- #
_VALUES = st.one_of(
    st.text(max_size=80),  # unicode, including ""
    st.binary(max_size=80),  # bytes-heavy, including b""
    st.integers(min_value=-(2**40), max_value=2**40),
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.text(max_size=20), st.integers(-1000, 1000), st.none()),
        max_size=4,
    ),
    st.none(),
)


class TestCodecRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        codec=st.sampled_from(registered_codecs()),
        values=st.lists(_VALUES, min_size=1, max_size=8),
    )
    def test_seal_decode_round_trip(self, codec, values):
        events = tuple(
            EventRecord(value=v, key=None if i % 2 else f"k{i}")
            for i, v in enumerate(values)
        )
        sealed = _sealed(events, codec)
        received = PackedRecordBatch.from_bytes(sealed.to_bytes(), base_offset=0)
        received.verify_crc()
        assert len(received) == len(events)
        for i, original in enumerate(events):
            decoded = received.record_at(i)
            expected = (
                bytes(original.value)
                if isinstance(original.value, bytearray)
                else original.value
            )
            assert decoded.value == expected
            assert decoded.key == original.key

    @pytest.mark.parametrize("codec", registered_codecs())
    def test_single_record_and_empty_batch(self, codec):
        one = _sealed(_events(1), codec)
        rt = PackedRecordBatch.from_bytes(one.to_bytes())
        assert len(rt) == 1 and rt.record_at(0).value == {"n": 0, "payload": "x" * 40}
        empty = _sealed((), codec)
        rt = PackedRecordBatch.from_bytes(empty.to_bytes())
        assert len(rt) == 0 and rt.size_bytes == 0

    @pytest.mark.parametrize("codec", ("gzip", "lzma"))
    def test_forwarding_does_not_inflate(self, codec):
        """to_bytes on a wire-decoded compressed batch re-emits the stored
        body verbatim — the frame scan / decompression stays unpaid."""
        sealed = _sealed(_events(12), codec)
        wire = sealed.to_bytes()
        received = PackedRecordBatch.from_bytes(wire)
        assert received.to_bytes() == wire
        assert received._sizes is None  # still lazy: nothing decoded

    def test_min_size_gate_falls_back_to_none(self):
        packed = PackedRecordBatch.from_events(_events(1), append_time=1.0)
        sealed = packed.seal_wire("gzip", min_size=1 << 20)
        assert sealed.codec == "none"
        sealed.verify_crc()


# --------------------------------------------------------------------- #
# Corruption detection
# --------------------------------------------------------------------- #
class TestCorruptionDetection:
    def _flip(self, wire: bytes, position: int) -> bytearray:
        damaged = bytearray(wire)
        damaged[position] ^= 0x40
        return damaged

    @pytest.mark.parametrize("codec", ("none", "gzip"))
    def test_byte_flip_raises_at_decode(self, codec):
        wire = _sealed(_events(8), codec).to_bytes()
        damaged = self._flip(wire, WIRE_HEADER_BYTES + 5)
        batch = PackedRecordBatch.from_bytes(damaged)
        with pytest.raises(CorruptBatchError):
            batch.record_at(0)

    def test_byte_flip_rejected_at_append_packed_ingress(self):
        wire = _sealed(_events(8), "gzip").to_bytes()
        damaged = self._flip(wire, len(wire) - 3)
        log = PartitionLog("t", 0)
        with pytest.raises(CorruptBatchError):
            log.append_packed(PackedRecordBatch.from_bytes(damaged))
        assert log.log_end_offset == 0 and log.size_bytes == 0

    def test_post_ingress_flip_caught_at_fetch_decode(self):
        """Corruption that happens *after* the ingress CRC pass (the
        simulated at-rest bit rot) still cannot reach a consumer: the
        first decode re-verifies the CRC and raises."""
        wire = _sealed(_events(8), "gzip").to_bytes()
        backing = bytearray(wire)  # mutable store the chunk aliases
        log = PartitionLog("t", 0)
        log.append_packed(PackedRecordBatch.from_bytes(memoryview(backing)))
        backing[WIRE_HEADER_BYTES + 2] ^= 0x01  # rot a stored byte in place
        view = log.fetch(0, max_records=8)
        with pytest.raises(CorruptBatchError):
            view[0].record  # decode pays the forced CRC re-check
        with pytest.raises(CorruptBatchError):
            list(r.record.value for r in log.fetch(0, max_records=8))

    def test_truncated_wire_raises(self):
        wire = _sealed(_events(8), "none").to_bytes()
        batch = PackedRecordBatch.from_bytes(wire[: len(wire) - 4])
        with pytest.raises(CorruptBatchError):
            batch.record_at(7)
        with pytest.raises(CorruptBatchError):
            PackedRecordBatch.from_bytes(b"\x00\x01")

    def test_unknown_codec_id_rejected(self):
        wire = bytearray(_sealed(_events(4), "gzip").to_bytes())
        wire[2] = 99  # codec byte in the v1 header
        with pytest.raises(UnknownCodecError):
            PackedRecordBatch.from_bytes(bytes(wire))

    def test_crc_error_reports_context(self):
        wire = self._flip(_sealed(_events(8), "gzip").to_bytes(), WIRE_HEADER_BYTES)
        with pytest.raises(CorruptBatchError) as excinfo:
            PackedRecordBatch.from_bytes(wire, base_offset=100).verify_crc()
        message = str(excinfo.value)
        assert "crc" in message.lower()
        assert "100" in message  # base offset locates the damaged batch


# --------------------------------------------------------------------- #
# Replica recovery
# --------------------------------------------------------------------- #
class TestReplicaRecovery:
    def _cluster_with_damaged_follower(self):
        """3-broker cluster, rf=3, gzip topic; one follower's replica is
        replaced with an independently-backed copy of the leader's chunks
        whose backing store then rots in place."""
        cluster = FabricCluster(num_brokers=3, name="recovery")
        cluster.admin().create_topic(
            "events", TopicConfig(num_partitions=1, replication_factor=3)
        )
        producer = FabricProducer(
            cluster, ProducerConfig(acks="all", compression="gzip")
        )
        for i in range(32):
            producer.buffer("events", {"n": i, "body": "y" * 64}, key=f"k{i % 4}")
        producer.flush()

        assignment = cluster._replication._assignments[("events", 0)]
        follower_id = next(
            b for b in assignment.replicas if b != assignment.leader
        )
        follower = cluster._brokers[follower_id]
        leader_log = cluster._brokers[assignment.leader].replica("events", 0)

        # Rebuild the follower from independent byte copies of the leader's
        # sealed chunks (replication shares chunk objects, so flipping the
        # shared chunk would damage the leader too), then rot one copy.
        fresh = follower.reset_replica(
            "events",
            0,
            max_message_bytes=leader_log.max_message_bytes,
            segment_records=leader_log.segment_records,
            segment_bytes=leader_log.segment_bytes,
        )
        backings = []
        for source, start, stop in leader_log.fetch(
            0, max_records=leader_log.log_end_offset, max_bytes=None
        ).runs():
            chunk = source.slice(start, stop) if isinstance(
                source, PackedRecordBatch
            ) else PackedRecordBatch.from_stored([source])
            sealed = chunk if chunk._wire is not None else chunk.seal_wire("gzip")
            backing = bytearray(sealed.to_bytes())
            backings.append(backing)
            copy = PackedRecordBatch.from_bytes(
                memoryview(backing), base_offset=chunk.base_offset
            )
            fresh.append_packed(copy)
        assert fresh.log_end_offset == leader_log.log_end_offset
        backings[0][WIRE_HEADER_BYTES + 1] ^= 0x08
        return cluster, assignment, follower_id, leader_log

    def test_recover_replica_rebuilds_from_leader(self):
        cluster, assignment, follower_id, leader_log = (
            self._cluster_with_damaged_follower()
        )
        follower_log = cluster._brokers[follower_id].replica("events", 0)
        damaged_view = follower_log.fetch(0, max_records=8)
        with pytest.raises(CorruptBatchError):
            damaged_view[0].record

        outcome = cluster._replication.recover_replica("events", 0, follower_id)
        assert outcome.recovered
        assert outcome.attempts == 1
        end = outcome.log_end_offset
        assert end == leader_log.log_end_offset

        recovered = cluster._brokers[follower_id].replica("events", 0)
        leader_values = [
            s.record.value
            for s in leader_log.fetch(0, max_records=end, max_bytes=None)
        ]
        recovered_values = [
            s.record.value
            for s in recovered.fetch(0, max_records=end, max_bytes=None)
        ]
        assert recovered_values == leader_values
        assert follower_id in assignment.isr

    def test_recover_replica_refuses_leader(self):
        cluster = FabricCluster(num_brokers=2, name="recovery-leader")
        cluster.admin().create_topic(
            "events", TopicConfig(num_partitions=1, replication_factor=2)
        )
        assignment = cluster._replication._assignments[("events", 0)]
        with pytest.raises(ValueError):
            cluster._replication.recover_replica(
                "events", 0, assignment.leader
            )

    def test_recovery_propagates_leader_corruption(self):
        """If the leader's own chunk is rotten, recovery must raise rather
        than copy damaged bytes onto the follower."""
        cluster = FabricCluster(num_brokers=2, name="recovery-bad-leader")
        cluster.admin().create_topic(
            "events", TopicConfig(num_partitions=1, replication_factor=2)
        )
        assignment = cluster._replication._assignments[("events", 0)]
        leader = cluster._brokers[assignment.leader]
        follower_id = next(
            b for b in assignment.replicas if b != assignment.leader
        )
        backing = bytearray(_sealed(_events(8), "gzip").to_bytes())
        leader.replica("events", 0).append_packed(
            PackedRecordBatch.from_bytes(memoryview(backing))
        )
        backing[WIRE_HEADER_BYTES + 3] ^= 0x20  # leader-side at-rest rot
        with pytest.raises(CorruptBatchError):
            cluster._replication.recover_replica("events", 0, follower_id)
