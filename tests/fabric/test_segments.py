"""Tests for the segmented partition-log storage layer.

Covers the segment lifecycle (roll, seal, sparse index), whole-segment
retention drops, lock-split reads, the compaction lost-append regression,
segment configuration plumbing (topic → broker replicas) and the admin
introspection surface.
"""

import threading

import pytest

from repro.fabric import FabricCluster, TopicConfig
from repro.fabric.errors import AuthorizationError, InvalidConfigError
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord, StoredRecord
from repro.fabric.retention import (
    compact,
    enforce_size_retention,
    enforce_time_retention,
)


def make_log(**kwargs) -> PartitionLog:
    kwargs.setdefault("segment_records", 4)
    return PartitionLog("topic", 0, **kwargs)


class TestSegmentLifecycle:
    def test_active_segment_rolls_at_record_threshold(self):
        log = make_log(segment_records=4)
        for i in range(10):
            log.append(EventRecord(value=i))
        described = log.describe_segments()
        assert [s["records"] for s in described] == [4, 4, 2]
        assert [s["sealed"] for s in described] == [True, True, False]
        assert [s["base_offset"] for s in described] == [0, 4, 8]

    def test_active_segment_rolls_at_byte_threshold(self):
        log = PartitionLog("topic", 0, segment_bytes=250)
        for _ in range(6):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        # Each segment seals once >= 250 B, i.e. after its third record.
        assert [s["records"] for s in log.describe_segments()] == [3, 3]

    def test_offsets_contiguous_across_segment_boundaries(self):
        log = make_log(segment_records=3)
        for i in range(11):
            log.append(EventRecord(value=i))
        assert [r.offset for r in log.read_all()] == list(range(11))
        boundaries = [s["base_offset"] for s in log.describe_segments()]
        ends = [s["end_offset"] for s in log.describe_segments()]
        assert boundaries[1:] == ends[:-1]  # no gaps between segments

    def test_append_batch_larger_than_segment_rolls_as_it_goes(self):
        log = make_log(segment_records=4)
        offsets = log.append_batch([EventRecord(value=i) for i in range(10)])
        assert offsets == list(range(10))
        assert [s["records"] for s in log.describe_segments()] == [4, 4, 2]
        assert [r.value for r in log.fetch(0, max_records=100)] == list(range(10))

    def test_segment_time_bounds_track_append_times(self):
        log = make_log(segment_records=2)
        for i in range(5):
            log.append(EventRecord(value=i), append_time=10.0 * (i + 1))
        described = log.describe_segments()
        assert (described[0]["min_append_time"], described[0]["max_append_time"]) == (10.0, 20.0)
        assert (described[1]["min_append_time"], described[1]["max_append_time"]) == (30.0, 40.0)
        assert (described[2]["min_append_time"], described[2]["max_append_time"]) == (50.0, 50.0)

    def test_fetch_spans_segments(self):
        log = make_log(segment_records=3)
        for i in range(10):
            log.append(EventRecord(value=i))
        records = log.fetch(2, max_records=6)
        assert [r.offset for r in records] == [2, 3, 4, 5, 6, 7]

    def test_fetch_byte_budget_charged_across_segments(self):
        log = make_log(segment_records=2)
        for _ in range(8):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        records, used = log.fetch_with_usage(0, max_records=10, max_bytes=350)
        assert len(records) == 3
        assert used == 300


class TestWholeSegmentRetention:
    def test_truncate_at_boundary_drops_whole_segments_by_pointer(self):
        log = make_log(segment_records=4)
        for i in range(12):
            log.append(EventRecord(value=i))
        survivor = log._segments[1]  # sealed [4, 8)
        removed = log.truncate_before(4)
        assert removed == 4
        # The surviving sealed segment is the *same object*: no record was
        # copied to drop the first segment.
        assert log._segments[0] is survivor
        assert log.log_start_offset == 4

    def test_truncate_mid_segment_rebuilds_only_the_boundary(self):
        log = make_log(segment_records=4)
        for i in range(12):
            log.append(EventRecord(value=i))
        untouched = log._segments[2]
        removed = log.truncate_before(6)  # inside the second segment
        assert removed == 6
        assert [r.offset for r in log.read_all()] == list(range(6, 12))
        assert log._segments[-2] is untouched or log._segments[-1] is untouched

    def test_truncate_everything_leaves_fresh_active_segment(self):
        log = make_log(segment_records=4)
        for i in range(9):
            log.append(EventRecord(value=i))
        assert log.truncate_before(log.log_end_offset) == 9
        assert len(log) == 0
        assert log.log_end_offset == 9
        assert log.append(EventRecord(value="next")) == 9

    def test_size_bytes_sums_cached_segment_counters(self):
        log = make_log(segment_records=3)
        for _ in range(10):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        assert log.size_bytes == 1000
        log.truncate_before(4)
        assert log.size_bytes == 600

    def test_time_retention_drops_whole_segments(self):
        log = make_log(segment_records=100)
        for i in range(1000):
            log.append(EventRecord(value=i), append_time=float(i))
        removed = enforce_time_retention(log, retention_seconds=499.0, now=999.0)
        assert removed == 500
        assert log.log_start_offset == 500
        assert [r.offset for r in log.read_all()] == list(range(500, 1000))

    def test_size_retention_record_granular_semantics_preserved(self):
        log = make_log(segment_records=3)
        for _ in range(10):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        removed = enforce_size_retention(log, retention_bytes=350)
        assert removed == 7
        assert len(log) == 3


class TestCompactionSegments:
    def test_compaction_preserves_per_key_latest_across_segments(self):
        log = make_log(segment_records=4)
        for i in range(12):
            log.append(EventRecord(value=i, key=f"k{i % 3}"))
        removed = log.compact()
        assert removed == 9
        assert {r.key: r.value for r in log.read_all()} == {
            "k0": 9, "k1": 10, "k2": 11,
        }

    def test_fetch_over_compaction_gaps_uses_sparse_index(self):
        log = make_log(segment_records=200)
        for i in range(400):
            log.append(EventRecord(value=i, key="hot" if i % 2 else f"cold{i}"))
        log.compact()  # every odd record except the last collapses into one
        sealed = log.describe_segments()[0]
        assert not sealed["contiguous"]
        # Fetching at a compacted-away offset returns the next surviving one.
        records = log.fetch(101, max_records=3)
        assert [r.offset for r in records] == [102, 104, 106]

    def test_compaction_then_append_keeps_offsets_monotone(self):
        log = make_log(segment_records=4)
        for i in range(6):
            log.append(EventRecord(value=i, key="same"))
        log.compact()
        assert log.append(EventRecord(value="fresh")) == 6
        assert [r.offset for r in log.read_all()] == [5, 6]

    def test_compaction_never_drops_concurrent_appends(self):
        """Regression for the lost-append race: the old snapshot →
        filter → ``replace_records`` dance held no lock across its steps,
        so records appended in between were silently dropped.  Segment-wise
        compaction runs under the log's write path, so every record
        appended concurrently with a compaction storm must survive it."""
        log = PartitionLog("t", 0, segment_records=64)
        for i in range(2000):
            log.append(EventRecord(value=i, key=f"k{i % 10}"))
        stop = threading.Event()
        survivors_expected = []

        def appender():
            i = 0
            while not stop.is_set() or i < 200:
                # Unkeyed records carry no compaction identity: every one
                # must still be present after any number of compactions.
                survivors_expected.append(log.append(EventRecord(value=f"live-{i}")))
                i += 1

        thread = threading.Thread(target=appender)
        thread.start()
        try:
            for _ in range(30):
                compact(log)
        finally:
            stop.set()
            thread.join()
        compact(log)
        retained = {r.offset for r in log.read_all()}
        lost = [offset for offset in survivors_expected if offset not in retained]
        assert lost == []

    def test_replace_records_rechunks_into_sealed_segments(self):
        log = make_log(segment_records=3)
        for i in range(10):
            log.append(EventRecord(value=i))
        survivors = [r for r in log.read_all() if r.offset % 2 == 0]
        log.replace_records(survivors)
        assert [r.offset for r in log.read_all()] == [0, 2, 4, 6, 8]
        described = log.describe_segments()
        assert [s["records"] for s in described] == [3, 2, 0]
        assert described[-1]["sealed"] is False  # fresh active at log end
        assert log.append(EventRecord(value="x")) == 10


class TestLockSplitReads:
    def test_reads_race_appends_without_corruption(self):
        """Fetches snapshot the segment list and never take the write
        lock, so concurrent appends must never produce torn or reordered
        reads."""
        log = PartitionLog("t", 0, segment_records=32)
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                end = log.log_end_offset
                if end == 0:
                    continue
                records = log.fetch(0, max_records=end)
                offsets = [r.offset for r in records]
                if offsets != list(range(len(offsets))):
                    errors.append(offsets)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for i in range(3000):
                log.append(EventRecord(value=i))
        finally:
            done.set()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_append_stored_gap_rolls_active_segment(self):
        """A follower adopting a compacted leader's records keeps its
        active segment contiguous by rolling at the gap."""
        log = make_log(segment_records=100)
        log.append_stored(
            [
                StoredRecord(offset=0, record=EventRecord(value="a"), append_time=1.0),
                StoredRecord(offset=1, record=EventRecord(value="b"), append_time=2.0),
                StoredRecord(offset=5, record=EventRecord(value="c"), append_time=3.0),
            ]
        )
        assert log.log_end_offset == 6
        described = log.describe_segments()
        assert [s["base_offset"] for s in described] == [0, 5]
        assert all(s["contiguous"] for s in described)
        assert [r.offset for r in log.fetch(0, max_records=10)] == [0, 1, 5]
        assert [r.offset for r in log.fetch(3, max_records=10)] == [5]


class TestSegmentConfigPlumbing:
    def test_invalid_segment_config_rejected(self):
        with pytest.raises(InvalidConfigError):
            TopicConfig(segment_records=0).validate()
        with pytest.raises(InvalidConfigError):
            TopicConfig(segment_bytes=-1).validate()
        with pytest.raises(ValueError):
            PartitionLog("t", 0, segment_records=0)

    def test_topic_segment_config_reaches_canonical_and_replica_logs(self):
        cluster = FabricCluster(num_brokers=2)
        cluster.admin().create_topic(
            "seg", TopicConfig(num_partitions=1, segment_records=5, segment_bytes=1 << 16)
        )
        canonical = cluster.topic("seg").partition(0)
        assert canonical.segment_records == 5
        assert canonical.segment_bytes == 1 << 16
        for broker in cluster.brokers.values():
            if broker.has_replica("seg", 0):
                replica = broker.replica("seg", 0)
                assert replica.segment_records == 5
        for i in range(12):
            cluster.append("seg", 0, EventRecord(value=i))
        assert canonical.num_segments == 3

    def test_replication_created_replica_inherits_segment_config(self):
        """A replica first materialized by the replication path (not admin
        placement) must inherit the leader log's segment thresholds."""
        cluster = FabricCluster(num_brokers=2)
        cluster.admin().create_topic(
            "seg2", TopicConfig(num_partitions=1, replication_factor=2, segment_records=9)
        )
        assignment = cluster.replication.assignment("seg2", 0)
        follower_id = next(b for b in assignment.replicas if b != assignment.leader)
        cluster.brokers[follower_id].drop_replica("seg2", 0)
        cluster.append("seg2", 0, EventRecord(value=1))  # re-creates via replication
        replica = cluster.brokers[follower_id].replica("seg2", 0)
        assert replica.segment_records == 9

    def test_config_roundtrips_through_dict(self):
        config = TopicConfig(segment_records=7, segment_bytes=123456)
        clone = TopicConfig.from_dict(config.to_dict())
        assert clone.segment_records == 7
        assert clone.segment_bytes == 123456


class TestAdminSegmentIntrospection:
    def test_describe_segments_reports_layout(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic(
            "obs", TopicConfig(num_partitions=2, replication_factor=1, segment_records=4)
        )
        for i in range(10):
            cluster.append("obs", 0, EventRecord(value=i))
        description = cluster.admin().describe_segments("obs")
        assert set(description["partitions"]) == {0, 1}
        p0 = description["partitions"][0]
        assert p0["log_end_offset"] == 10
        assert p0["num_segments"] == 3
        assert [s["records"] for s in p0["segments"]] == [4, 4, 2]
        only_p1 = cluster.admin().describe_segments("obs", partition=1)
        assert set(only_p1["partitions"]) == {1}

    def test_describe_segments_goes_through_authorization(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic("obs", TopicConfig(num_partitions=1))
        denied = cluster.admin(
            principal="mallory", authorizer=lambda p, op, res: False
        )
        with pytest.raises(AuthorizationError):
            denied.describe_segments("obs")

    def test_retention_run_still_propagates_to_replicas(self):
        cluster = FabricCluster(num_brokers=2)
        cluster.admin().create_topic(
            "ret",
            TopicConfig(
                num_partitions=1,
                replication_factor=2,
                retention_bytes=350,
                retention_seconds=None,
                segment_records=3,
            ),
        )
        for _ in range(10):
            cluster.append("ret", 0, EventRecord(value=b"x" * 76))  # 100 B each
        removed = cluster.admin().run_retention("ret")
        assert removed["ret"][0] == 7
        for broker in cluster.brokers.values():
            if broker.has_replica("ret", 0):
                assert broker.replica("ret", 0).log_start_offset == 7
