"""Tests for the fetch-session data plane and the clients rebuilt on it.

Covers :meth:`FabricCluster.fetch_many`/:class:`FetchSession` semantics
(session-wide caps, per-topic authorization, leader caching and
invalidation under broker failure), the consumer's background prefetch
thread (including discard-on-rebalance), the producer's background
delivery thread, injectable clocks for both, batched MirrorMaker sync and
the partition-drift regression.
"""

import threading
import time

import pytest

from repro.common.clock import ManualClock
from repro.fabric.cluster import FabricCluster, FetchRequest
from repro.fabric.consumer import ConsumerConfig, FabricConsumer
from repro.fabric.errors import AuthorizationError, UnknownTopicError
from repro.fabric.mirrormaker import MirrorMaker
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.record import EventRecord
from repro.fabric.topic import TopicConfig


def make_cluster(partitions=4, brokers=2, topic="events", replication=2):
    cluster = FabricCluster(num_brokers=brokers)
    cluster.admin().create_topic(
        topic,
        TopicConfig(num_partitions=partitions, replication_factor=replication),
    )
    return cluster


def fill(cluster, topic, partition, count, size=76):
    # A ``size``-char string serializes to ``size`` B; +24 B framing.
    cluster.append_batch(
        topic, partition, [EventRecord(value="x" * size) for _ in range(count)]
    )


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFetchMany:
    def test_matches_per_partition_fetch(self):
        cluster = make_cluster(partitions=3)
        for p in range(3):
            fill(cluster, "events", p, 5 + p)
        batches = cluster.fetch_many(
            [FetchRequest("events", p, 0) for p in range(3)]
        )
        for p in range(3):
            expected = cluster.fetch("events", p, 0)
            assert [r.offset for r in batches[("events", p)]] == [
                r.offset for r in expected
            ]
            assert [r.value for r in batches[("events", p)]] == [
                r.value for r in expected
            ]

    def test_accepts_mapping_of_offsets(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 4)
        fill(cluster, "events", 1, 4)
        batches = cluster.fetch_many({("events", 0): 2, ("events", 1): 0})
        assert [r.offset for r in batches[("events", 0)]] == [2, 3]
        assert [r.offset for r in batches[("events", 1)]] == [0, 1, 2, 3]

    def test_spans_multiple_topics(self):
        cluster = make_cluster(partitions=2)
        cluster.admin().create_topic("health", TopicConfig(num_partitions=1))
        fill(cluster, "events", 0, 3)
        fill(cluster, "health", 0, 2)
        batches = cluster.fetch_many(
            [FetchRequest("events", 0, 0), FetchRequest("health", 0, 0)]
        )
        assert len(batches[("events", 0)]) == 3
        assert len(batches[("health", 0)]) == 2

    def test_record_cap_is_charged_across_the_session(self):
        cluster = make_cluster(partitions=3)
        for p in range(3):
            fill(cluster, "events", p, 10)
        batches = cluster.fetch_many(
            [FetchRequest("events", p, 0) for p in range(3)], max_records=15
        )
        assert sum(len(r) for r in batches.values()) == 15
        # Request order wins: the first partitions take their fill.
        assert len(batches[("events", 0)]) == 10
        assert len(batches[("events", 1)]) == 5
        assert ("events", 2) not in batches

    def test_byte_cap_is_charged_across_the_session(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10, size=76)  # 100 B each on the wire
        fill(cluster, "events", 1, 10, size=76)
        batches = cluster.fetch_many(
            [FetchRequest("events", 0, 0), FetchRequest("events", 1, 0)],
            max_bytes=250,
        )
        # Partition 0: two records fit the budget; partition 1: the first
        # record is always granted (Kafka's make-progress rule).
        assert len(batches[("events", 0)]) == 2
        assert len(batches[("events", 1)]) == 1

    def test_per_request_cap_nests_under_session_cap(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10)
        fill(cluster, "events", 1, 10)
        batches = cluster.fetch_many(
            [
                FetchRequest("events", 0, 0, max_records=3),
                FetchRequest("events", 1, 0),
            ],
            max_records=100,
        )
        assert len(batches[("events", 0)]) == 3
        assert len(batches[("events", 1)]) == 10

    def test_one_authorization_check_per_topic(self):
        calls = []

        def authorizer(principal, operation, topic):
            calls.append((principal, operation, topic))
            return True

        cluster = make_cluster(partitions=8)
        cluster.admin().set_authorizer(authorizer)
        for p in range(8):
            fill(cluster, "events", p, 2)
        calls.clear()
        cluster.fetch_many(
            [FetchRequest("events", p, 0) for p in range(8)], principal="alice"
        )
        assert calls == [("alice", "READ", "events")]

    def test_unauthorized_principal_is_rejected(self):
        cluster = make_cluster()
        fill(cluster, "events", 0, 1)
        cluster.admin().set_authorizer(lambda principal, op, topic: principal == "alice")
        with pytest.raises(AuthorizationError):
            cluster.fetch_many([FetchRequest("events", 0, 0)], principal="mallory")

    def test_unknown_topic_raises(self):
        cluster = make_cluster()
        with pytest.raises(UnknownTopicError):
            cluster.fetch_many([FetchRequest("missing", 0, 0)])

    def test_empty_request_set(self):
        cluster = make_cluster()
        assert cluster.fetch_many([]) == {}

    def test_mixed_request_shapes_are_normalized(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 3)
        fill(cluster, "events", 1, 3)
        batches = cluster.fetch_many(
            [FetchRequest("events", 0, 0), ("events", 1, 1)]
        )
        assert len(batches[("events", 0)]) == 3
        assert [r.offset for r in batches[("events", 1)]] == [1, 2]


class TestFetchSessionFailover:
    def test_leader_cache_reused_across_calls(self):
        cluster = make_cluster(partitions=4)
        for p in range(4):
            fill(cluster, "events", p, 3)
        session = cluster.fetch_session()
        requests = [FetchRequest("events", p, 0) for p in range(4)]
        first = session.fetch(requests)
        assert len(session.cached_leaders()) == 4
        cached = dict(session._leaders)
        second = session.fetch(requests)
        assert session._leaders == cached  # no re-resolution
        assert first.keys() == second.keys()

    def test_broker_failure_mid_session_fails_over(self):
        cluster = make_cluster(partitions=4, brokers=3, replication=3)
        for p in range(4):
            fill(cluster, "events", p, 5)
        session = cluster.fetch_session()
        requests = [FetchRequest("events", p, 0) for p in range(4)]
        before = session.fetch(requests)
        assert sum(len(r) for r in before.values()) == 20
        victim = next(iter(session.cached_leaders().values()))
        cluster.admin().fail_broker(victim)
        after = session.fetch(requests)
        assert sum(len(r) for r in after.values()) == 20
        assert all(b != victim for b in session.cached_leaders().values())

    def test_broker_restore_invalidates_stale_cache(self):
        cluster = make_cluster(partitions=2, brokers=2)
        fill(cluster, "events", 0, 4)
        fill(cluster, "events", 1, 4)
        session = cluster.fetch_session()
        requests = [FetchRequest("events", p, 0) for p in range(2)]
        session.fetch(requests)
        victim = next(iter(session.cached_leaders().values()))
        cluster.admin().fail_broker(victim)
        session.fetch(requests)  # fail over to the surviving broker
        cluster.admin().restore_broker(victim)
        # The metadata epoch moved on restore, so the session re-resolves
        # instead of trusting brokers cached before the failure.
        epoch = cluster.metadata_epoch
        batches = session.fetch(requests)
        assert sum(len(r) for r in batches.values()) == 8
        assert session._epoch == epoch


class TestConsumerOnFetchSessions:
    def test_poll_budget_spans_partitions(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10, size=76)  # 100 B each
        fill(cluster, "events", 1, 10, size=76)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(enable_auto_commit=False, receive_buffer_bytes=250),
        )
        records = consumer.poll_flat()
        # 2 records fit the session budget, plus partition 1's guaranteed
        # first record — the byte cap is shared, not per partition.
        assert len(records) == 3
        consumer.close()

    def test_auto_commit_follows_injected_clock(self):
        cluster = make_cluster(partitions=1)
        fill(cluster, "events", 0, 6)
        clock = ManualClock(start=1000.0)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(
                group_id="clocked", auto_commit_interval_seconds=5.0
            ),
            clock=clock,
        )
        consumer.poll(max_records=3)
        assert consumer.committed("events", 0) is None  # interval not elapsed
        clock.advance(6.0)
        consumer.poll(max_records=3)
        assert consumer.committed("events", 0) == 6
        consumer.close()


class TestPrefetch:
    def test_prefetched_records_are_drained_on_poll(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10)
        fill(cluster, "events", 1, 10)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(enable_auto_commit=False, prefetch=True),
        )
        consumer._prefetch_once()  # deterministically prime the buffer
        assert sum(len(v) for v in consumer._prefetched.values()) == 20
        records = consumer.poll_flat()
        assert len(records) == 20
        assert consumer.metrics.prefetch_hits == 20
        consumer.close()

    def test_prefetching_consumer_delivers_exactly_once(self):
        cluster = make_cluster(partitions=4)
        for p in range(4):
            fill(cluster, "events", p, 100)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(
                enable_auto_commit=False, prefetch=True, max_poll_records=37
            ),
        )
        seen = {}
        deadline = time.monotonic() + 10.0
        while sum(len(v) for v in seen.values()) < 400:
            assert time.monotonic() < deadline, "consumer stalled"
            for tp, records in consumer.poll().items():
                seen.setdefault(tp, []).extend(r.offset for r in records)
        consumer.close()
        assert sum(len(v) for v in seen.values()) == 400
        for offsets in seen.values():
            assert offsets == sorted(set(offsets))  # no duplicates, in order

    def test_prefetch_survives_rebalance_for_retained_partitions_only(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10)
        fill(cluster, "events", 1, 10)
        first = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(
                group_id="shared", enable_auto_commit=False, prefetch=True
            ),
        )
        first._prefetch_once()
        assert set(first._prefetched) == set(first.assignment())  # both primed
        second = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(group_id="shared", enable_auto_commit=False),
        )
        batches = first.poll()  # adopts the cooperative revocation
        owned = set(first.assignment())
        assert len(owned) == 1
        # Selective invalidation: the revoked partition's buffer is gone,
        # but the retained partition was served straight from prefetch —
        # it never stopped, and nothing stale leaked out.
        assert set(batches) == owned
        assert first.metrics.prefetch_hits == 10
        for tp, records in batches.items():
            assert [r.offset for r in records] == list(range(len(records)))
        first.close()
        second.close()

    def test_prefetch_drain_charges_byte_budget(self):
        """Regression: a prefetching poll must not return 2x the byte cap
        (drained buffer + a fresh full-budget fetch)."""
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 10, size=76)  # 100 B each on the wire
        fill(cluster, "events", 1, 10, size=76)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(
                enable_auto_commit=False, prefetch=True, receive_buffer_bytes=250
            ),
        )
        consumer._prefetch_once()  # buffers up to the 250 B session cap
        records = consumer.poll_flat()
        # At most the cap plus the single make-progress record a plain
        # fetch may also grant.
        assert sum(r.size_bytes() for r in records) <= 250 + 100
        assert records  # the budget still makes progress
        consumer.close()

    def test_seek_discards_stale_prefetch(self):
        cluster = make_cluster(partitions=1)
        fill(cluster, "events", 0, 10)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(enable_auto_commit=False, prefetch=True),
        )
        consumer.poll(max_records=5)
        consumer._prefetch_once()  # buffers offsets 5..9
        consumer.seek("events", 0, 0)
        records = consumer.poll_flat()
        assert [r.offset for r in records] == list(range(10))
        consumer.close()

    def test_failed_sync_fetch_rolls_back_drained_records(self):
        """Regression: if the synchronous fetch after a prefetch drain
        raises, the drained records must return to the buffer — otherwise
        their positions are advanced past records the application never
        saw (at-least-once violation)."""
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 5)
        fill(cluster, "events", 1, 5)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(enable_auto_commit=False, prefetch=True),
        )
        consumer._prefetch_once()  # buffers all 10 records
        cluster.admin().set_authorizer(lambda principal, op, topic: op != "READ")
        with pytest.raises(AuthorizationError):
            consumer.poll()
        assert consumer.position("events", 0) == 0
        assert consumer.position("events", 1) == 0
        assert sum(len(v) for v in consumer._prefetched.values()) == 10
        cluster.admin().set_authorizer(None)
        got = {}
        deadline = time.monotonic() + 10.0
        while sum(len(v) for v in got.values()) < 10:
            assert time.monotonic() < deadline
            for tp, records in consumer.poll().items():
                got.setdefault(tp, []).extend(r.offset for r in records)
        consumer.close()
        for offsets in got.values():
            assert offsets == list(range(5))  # exactly once, in order

    def test_concurrent_prefetch_never_duplicates_buffer(self):
        cluster = make_cluster(partitions=2)
        fill(cluster, "events", 0, 50)
        fill(cluster, "events", 1, 50)
        consumer = FabricConsumer(
            cluster,
            ["events"],
            ConsumerConfig(enable_auto_commit=False, prefetch=True),
        )
        threads = [
            threading.Thread(target=consumer._prefetch_once) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for tp, buffered in consumer._prefetched.items():
            offsets = [r.offset for r in buffered]
            assert offsets == sorted(set(offsets))
        assert len(consumer.poll_flat(max_records=200)) == 100
        consumer.close()


class TestProducerBackgroundDelivery:
    def test_linger_flushes_without_further_calls(self):
        cluster = make_cluster(partitions=1)
        producer = FabricProducer(
            cluster, ProducerConfig(linger_seconds=0.01)
        )
        producer.buffer("events", "only-event", partition=0)
        assert wait_until(
            lambda: cluster.end_offset("events", 0) == 1
        ), "background delivery thread never flushed the lingered batch"
        assert producer.buffered_bytes == 0
        assert [r.value for r in cluster.fetch("events", 0, 0)] == ["only-event"]
        producer.close()

    def test_linger_timing_runs_on_injected_clock(self):
        cluster = make_cluster(partitions=1)
        clock = ManualClock(start=500.0)
        producer = FabricProducer(
            cluster, ProducerConfig(linger_seconds=60.0), clock=clock
        )
        producer.buffer("events", "patient", partition=0)
        # Real time passes, simulated time does not: nothing may flush.
        time.sleep(0.15)
        assert cluster.end_offset("events", 0) == 0
        clock.advance(61.0)  # one simulated minute; no buffer()/flush() call
        assert wait_until(lambda: cluster.end_offset("events", 0) == 1)
        producer.close()

    def test_close_joins_delivery_thread(self):
        cluster = make_cluster(partitions=1)
        producer = FabricProducer(cluster, ProducerConfig(linger_seconds=0.01))
        producer.buffer("events", "bye", partition=0)
        producer.close()
        assert cluster.end_offset("events", 0) == 1
        assert not producer._delivery_thread.is_alive()

    def test_failed_close_restarts_delivery_on_next_buffer(self):
        """Regression: a close() whose flush fails must leave background
        delivery restartable on the still-open producer."""
        from repro.fabric.errors import FabricError

        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic("events", TopicConfig(num_partitions=1, replication_factor=1))
        clock = ManualClock(start=0.0)
        producer = FabricProducer(
            cluster, ProducerConfig(linger_seconds=60.0, retries=0), clock=clock
        )
        producer.buffer("events", "stuck", partition=0)  # frozen clock: no auto-flush
        cluster.admin().fail_broker(0)
        with pytest.raises(FabricError):
            producer.close()
        assert producer.buffered_bytes > 0  # re-buffered, not lost
        cluster.admin().restore_broker(0)
        producer.buffer("events", "recovered", partition=0)  # restarts the thread
        clock.advance(61.0)
        assert wait_until(lambda: cluster.end_offset("events", 0) == 2)
        producer.close()


class TestSinglePartitionOffsets:
    def test_end_offset_matches_bulk_lookup(self):
        cluster = make_cluster(partitions=3)
        for p in range(3):
            fill(cluster, "events", p, p + 1)
        bulk = cluster.end_offsets("events")
        for p in range(3):
            assert cluster.end_offset("events", p) == bulk[p]

    def test_beginning_offset_after_retention(self):
        cluster = make_cluster(partitions=1)
        fill(cluster, "events", 0, 5)
        cluster.topic("events").partition(0).truncate_before(3)
        cluster.admin().run_retention("events")
        assert cluster.beginning_offset("events", 0) == cluster.beginning_offsets(
            "events"
        )[0]

    def test_end_offset_survives_broker_failure(self):
        cluster = make_cluster(partitions=1, brokers=2, replication=2)
        fill(cluster, "events", 0, 7)
        leader = cluster.replication.assignment("events", 0).leader
        cluster.admin().fail_broker(leader)
        assert cluster.end_offset("events", 0) == 7

    def test_unknown_topic_raises(self):
        cluster = make_cluster()
        with pytest.raises(UnknownTopicError):
            cluster.end_offset("missing", 0)


class TestMirrorMakerBatched:
    def make_clusters(self, partitions=2):
        source = FabricCluster(num_brokers=2, name="us-east-1")
        destination = FabricCluster(num_brokers=2, name="us-west-2")
        source.admin().create_topic(
            "telemetry", TopicConfig(num_partitions=partitions)
        )
        return source, destination

    def test_sync_appends_batches_with_provenance(self):
        source, destination = self.make_clusters()
        fill(source, "telemetry", 0, 5)
        fill(source, "telemetry", 1, 5)
        stats = MirrorMaker(source, destination).sync_topic("telemetry")
        assert stats.records_mirrored == 10
        assert stats.batches_appended == 2  # one batch per partition, not per record
        record = destination.fetch("telemetry", 0, 3)[0]
        assert record.record.headers["mirror.source.cluster"] == "us-east-1"
        assert record.record.headers["mirror.source.offset"] == "3"
        assert record.record.headers["mirror.batch.base_offset"] == "0"

    def test_partition_drift_is_healed_before_sync(self):
        """Regression: source grows partitions after the mirror exists."""
        source, destination = self.make_clusters(partitions=2)
        fill(source, "telemetry", 0, 2)
        mirror = MirrorMaker(source, destination)
        mirror.sync_topic("telemetry")
        assert destination.topic("telemetry").num_partitions == 2
        source.admin().set_partitions("telemetry", 4)
        fill(source, "telemetry", 3, 3)  # would previously crash on append
        stats = mirror.sync_topic("telemetry")
        assert destination.topic("telemetry").num_partitions == 4
        assert stats.records_mirrored == 3
        assert [r.value for r in destination.fetch("telemetry", 3, 0)] == [
            "x" * 76
        ] * 3

    def test_session_survives_source_broker_failure(self):
        source, destination = self.make_clusters()
        fill(source, "telemetry", 0, 4)
        mirror = MirrorMaker(source, destination)
        mirror.sync_topic("telemetry")
        leader = source.replication.assignment("telemetry", 0).leader
        source.admin().fail_broker(leader)
        fill(source, "telemetry", 0, 3)
        assert mirror.sync_topic("telemetry").records_mirrored == 3
        assert sum(destination.end_offsets("telemetry").values()) == 7


class TestBoundedMetrics:
    def test_consumer_poll_latencies_are_bounded(self):
        from repro.fabric.consumer import METRICS_WINDOW

        cluster = make_cluster(partitions=1)
        consumer = FabricConsumer(
            cluster, ["events"], ConsumerConfig(enable_auto_commit=False)
        )
        assert consumer.metrics.poll_latencies.maxlen == METRICS_WINDOW
        for _ in range(50):
            consumer.poll(max_records=1)
        assert len(consumer.metrics.poll_latencies) <= METRICS_WINDOW
        consumer.close()

    def test_producer_send_latencies_are_bounded(self):
        from repro.fabric.producer import METRICS_WINDOW

        cluster = make_cluster(partitions=1)
        producer = FabricProducer(cluster)
        assert producer.metrics.send_latencies.maxlen == METRICS_WINDOW
        for i in range(20):
            producer.send("events", i, partition=0)
        assert len(producer.metrics.send_latencies) == 20
        producer.close()
