"""Tests for the admin/data-plane API split.

Covers the three surfaces of the redesign: :class:`FabricAdmin` as the
single control plane (the deprecated ``FabricCluster`` shims are gone —
admin operations exist only on :class:`FabricAdmin`), the batched
group-commit path
(:meth:`OffsetStore.commit_many` / :meth:`FabricCluster.commit_group`),
and epoch-scoped ACL caching on fetch sessions.
"""

import pytest

from repro.auth.acl import AclStore
from repro.fabric.cluster import FabricCluster, FetchRequest
from repro.fabric.consumer import ConsumerConfig, FabricConsumer
from repro.fabric.errors import (
    AuthorizationError,
    IllegalGenerationError,
    CommitFailedError,
    UnknownTopicError,
)
from repro.fabric.offsets import OffsetStore
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.record import EventRecord
from repro.fabric.topic import TopicConfig


@pytest.fixture
def cluster() -> FabricCluster:
    return FabricCluster(num_brokers=2)


def fill(cluster, topic, partition, count):
    cluster.append_batch(
        topic, partition, [EventRecord(value=i) for i in range(count)]
    )


class TestAdminOwnsControlPlane:
    def test_admin_factory_returns_shared_default(self, cluster):
        assert cluster.admin() is cluster.admin()
        scoped = cluster.admin(principal="alice")
        assert scoped is not cluster.admin()
        assert scoped.principal == "alice"

    def test_create_and_delete_topic(self, cluster):
        admin = cluster.admin()
        admin.create_topic("a", TopicConfig(num_partitions=2))
        assert cluster.topics() == ["a"]
        admin.delete_topic("a")
        assert cluster.topics() == []
        with pytest.raises(UnknownTopicError):
            admin.delete_topic("a")

    def test_partition_growth_bumps_metadata_epoch(self, cluster):
        admin = cluster.admin()
        admin.create_topic("a", TopicConfig(num_partitions=1))
        before = cluster.metadata_epoch
        admin.set_partitions("a", 4)
        assert cluster.metadata_epoch > before
        # Non-partition config updates leave the epoch alone.
        epoch = cluster.metadata_epoch
        admin.update_topic_config("a", retention_seconds=60.0)
        assert cluster.metadata_epoch == epoch

    def test_producer_sees_partition_growth_immediately(self, cluster):
        admin = cluster.admin()
        admin.create_topic("a", TopicConfig(num_partitions=1))
        producer = FabricProducer(
            cluster, ProducerConfig(metadata_max_age_seconds=3600.0)
        )
        producer.send("a", "warm the metadata cache")
        admin.set_partitions("a", 4)
        # Despite the huge metadata max-age, the epoch bump reroutes now.
        md = producer.send("a", "explicit", partition=3)
        assert md.partition == 3

    def test_admin_authorizer_is_the_single_path(self, cluster):
        calls = []

        def authorizer(principal, operation, resource):
            calls.append((principal, operation, resource))
            return operation != "FAIL_BROKER"

        admin = cluster.admin(principal="ops", authorizer=authorizer)
        admin.create_topic("a")
        admin.run_retention("a")
        with pytest.raises(AuthorizationError):
            admin.fail_broker(0)
        assert cluster.brokers[0].online  # denied op had no effect
        assert calls == [
            ("ops", "CREATE_TOPIC", "topic:a"),
            ("ops", "RUN_RETENTION", "topic:a"),
            ("ops", "FAIL_BROKER", "broker:0"),
        ]

    def test_introspection(self, cluster):
        admin = cluster.admin()
        admin.create_topic("a", TopicConfig(num_partitions=2))
        description = admin.describe_cluster()
        assert description["topics"] == ["a"]
        assert admin.list_topics() == ["a"]
        assert admin.describe_topic("a")["config"]["num_partitions"] == 2
        FabricConsumer(cluster, ["a"], ConsumerConfig(group_id="g1"))
        assert admin.list_groups() == ["g1"]
        assert admin.describe_group("g1")["generation"] == 1


class TestCommitMany:
    def test_commit_many_single_timestamp_and_readback(self):
        store = OffsetStore()
        offsets = {("t", p): p * 10 for p in range(16)}
        entries = store.commit_many("g", offsets)
        assert len(entries) == 16
        assert len({e.commit_time for e in entries.values()}) == 1
        assert store.group_offsets("g") == offsets

    def test_commit_many_is_atomic_on_invalid_offset(self):
        store = OffsetStore()
        store.commit("g", "t", 0, 5)
        with pytest.raises(ValueError):
            store.commit_many("g", {("t", 0): 7, ("t", 1): -1})
        # Nothing in the failed batch landed — not even the valid entry.
        assert store.group_offsets("g") == {("t", 0): 5}

    def test_group_index_isolates_groups(self):
        store = OffsetStore()
        store.commit_many("g1", {("t", 0): 1, ("u", 0): 2})
        store.commit_many("g2", {("t", 0): 9})
        assert store.reset_group("g1", topic="t") == 1
        assert store.group_offsets("g1") == {("u", 0): 2}
        assert store.group_offsets("g2") == {("t", 0): 9}
        assert store.reset_group("g1") == 1
        assert store.group_offsets("g1") == {}

    def test_lag_clamps_against_beginning_offset(self):
        store = OffsetStore()
        # Never-committed group on a truncated log: position starts at the
        # beginning offset, not 0 — no phantom lag for purged records.
        assert store.lag("g", "t", 0, log_end_offset=10, beginning_offset=8) == 2
        # A commit below the beginning offset (truncated past it) clamps up.
        store.commit("g", "t", 0, 3)
        assert store.lag("g", "t", 0, log_end_offset=10, beginning_offset=8) == 2
        # A commit ahead of the beginning is respected as-is.
        store.commit("g", "t", 0, 9)
        assert store.lag("g", "t", 0, log_end_offset=10, beginning_offset=8) == 1


class TestCommitGroup:
    def test_commit_group_commits_whole_assignment(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(num_partitions=16))
        offsets = {("t", p): p + 1 for p in range(16)}
        cluster.commit_group("g", offsets)
        assert cluster.offsets.group_offsets("g") == offsets

    def test_generation_requires_member_id(self, cluster):
        with pytest.raises(ValueError):
            cluster.commit_group("g", {("t", 0): 1}, generation=1)

    def test_stale_generation_rejected_across_rebalance(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(num_partitions=4))
        partitions = cluster.partitions_for("t")
        member, generation, _ = cluster.groups.join("g", "c1", ["t"], partitions)
        cluster.commit_group(
            "g", {("t", 0): 1}, generation=generation, member_id=member
        )
        cluster.groups.join("g", "c2", ["t"], partitions)  # rebalance
        with pytest.raises(IllegalGenerationError):
            cluster.commit_group(
                "g", {("t", 0): 2, ("t", 1): 2}, generation=generation, member_id=member
            )
        # The stale batch committed nothing at all.
        assert cluster.offsets.group_offsets("g") == {("t", 0): 1}

    def test_consumer_commit_rides_commit_group(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(num_partitions=4))
        for p in range(4):
            fill(cluster, "t", p, 3)
        consumer = FabricConsumer(
            cluster, ["t"], ConsumerConfig(group_id="g", enable_auto_commit=False)
        )
        while consumer.poll_flat():
            pass
        consumer.commit()
        assert cluster.offsets.group_offsets("g") == {("t", p): 3 for p in range(4)}
        # A second member rebalances the group; the stale member's commit
        # must surface as CommitFailedError (batched path included).
        FabricConsumer(
            cluster, ["t"], ConsumerConfig(group_id="g", enable_auto_commit=False)
        )
        with pytest.raises(CommitFailedError):
            consumer.commit({("t", 0): 0})
        assert cluster.offsets.committed("g", "t", 0) == 3


class TestAclEpochCaching:
    def test_session_authorizes_once_per_epoch(self, cluster):
        calls = []

        def authorizer(principal, operation, topic):
            calls.append((principal, operation, topic))
            return True

        cluster.admin().create_topic("t", TopicConfig(num_partitions=2))
        fill(cluster, "t", 0, 4)
        fill(cluster, "t", 1, 4)
        cluster.admin().set_authorizer(authorizer)
        session = cluster.fetch_session(principal="alice")
        requests = [FetchRequest("t", p, 0) for p in range(2)]
        for _ in range(5):
            session.fetch(requests)
        assert calls == [("alice", "READ", "t")]  # once, not once per fetch
        cluster.bump_auth_epoch()
        session.fetch(requests)
        assert calls == [("alice", "READ", "t")] * 2

    def test_assignment_mode_authorizes_once_per_epoch(self, cluster):
        calls = []
        cluster.admin().create_topic("t", TopicConfig(num_partitions=2))
        fill(cluster, "t", 0, 4)
        cluster.admin().set_authorizer(lambda *a: calls.append(a) or True)
        session = cluster.fetch_session(principal="alice")
        session.set_assignment([("t", 0), ("t", 1)])
        positions = {("t", 0): 0, ("t", 1): 0}
        for _ in range(5):
            session.fetch_assignment(positions)
        assert len(calls) == 1

    def test_revocation_enforced_on_next_fetch(self, cluster):
        cluster.admin().create_topic("t")
        fill(cluster, "t", 0, 3)
        cluster.admin().set_authorizer(lambda principal, op, topic: True)
        session = cluster.fetch_session(principal="mallory")
        assert session.fetch([FetchRequest("t", 0, 0)])
        # Revoke: installing the new authorizer bumps the auth epoch, so
        # the session's cached authorization must not survive.
        cluster.admin().set_authorizer(lambda principal, op, topic: False)
        with pytest.raises(AuthorizationError):
            session.fetch([FetchRequest("t", 0, 0)])

    def test_acl_store_mutation_invalidates_sessions(self, cluster):
        acls = AclStore()
        acls.grant("alice", "t", ["READ"])
        cluster.admin().create_topic("t")
        fill(cluster, "t", 0, 3)
        cluster.admin().set_authorizer(acls.as_authorizer())
        acls.add_invalidation_listener(cluster.bump_auth_epoch)
        session = cluster.fetch_session(principal="alice")
        assert session.fetch([FetchRequest("t", 0, 0)])
        acls.revoke("alice", "t")  # listener bumps the auth epoch
        with pytest.raises(AuthorizationError):
            session.fetch([FetchRequest("t", 0, 0)])
        acls.grant("alice", "t", ["READ"])  # re-grant restores access
        assert session.fetch([FetchRequest("t", 0, 0)])

    def test_constructor_wired_acl_store_auto_invalidates(self):
        """Regression: an AclStore adapter passed to the FabricCluster
        constructor (no OctopusDeployment, no manual listener wiring) must
        still invalidate standing sessions on revocation — otherwise the
        epoch cache would let a revoked principal keep reading forever."""
        acls = AclStore()
        acls.grant("alice", "t", ["READ", "WRITE"])
        cluster = FabricCluster(num_brokers=2, authorizer=acls.as_authorizer())
        cluster.admin().create_topic("t")
        cluster.append_batch(
            "t", 0, [EventRecord(value=i) for i in range(3)], principal="alice"
        )
        session = cluster.fetch_session(principal="alice")
        assert session.fetch([FetchRequest("t", 0, 0)])
        acls.revoke("alice", "t", ["READ"])
        with pytest.raises(AuthorizationError):
            session.fetch([FetchRequest("t", 0, 0)])

    def test_admin_installed_acl_store_auto_invalidates(self, cluster):
        """Same auto-wiring through FabricAdmin.set_authorizer, without an
        explicit add_invalidation_listener call."""
        acls = AclStore()
        acls.grant("alice", "t", ["READ"])
        cluster.admin().create_topic("t")
        fill(cluster, "t", 0, 3)
        cluster.admin().set_authorizer(acls.as_authorizer())
        session = cluster.fetch_session(principal="alice")
        assert session.fetch([FetchRequest("t", 0, 0)])
        acls.revoke("alice", "t")
        with pytest.raises(AuthorizationError):
            session.fetch([FetchRequest("t", 0, 0)])

    def test_topic_deletion_not_masked_by_auth_cache(self, cluster):
        cluster.admin().create_topic("t")
        fill(cluster, "t", 0, 2)
        session = cluster.fetch_session()
        assert session.fetch([FetchRequest("t", 0, 0)])
        cluster.admin().delete_topic("t")
        with pytest.raises(UnknownTopicError):
            session.fetch([FetchRequest("t", 0, 0)])


class TestLagClampIntegration:
    def test_total_lag_ignores_retention_truncated_records(self, cluster):
        cluster.admin().create_topic("t", TopicConfig(retention_seconds=0.0))
        fill(cluster, "t", 0, 5)
        # Never-committed group, whole log truncated: no phantom backlog.
        cluster.admin().run_retention("t")
        assert cluster.beginning_offsets("t")[0] == 5
        assert cluster.total_lag("g", "t") == 0
