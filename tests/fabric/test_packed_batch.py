"""Packed-batch aliasing safety and one-encode path behaviour.

The one-encode design shares a single :class:`PackedRecordBatch` object
between the producer's sealed wire batch, the leader log's storage chunk,
fetch views, replication and MirrorMaker forwarding.  Sharing is only
safe if no reader can corrupt what another session is reading:

* a fetch view taken before a compaction/truncation must keep serving
  the records it covered (snapshot isolation),
* mutating a record decoded from wire bytes must never leak into the
  sealed payload or into a fresh decode,
* concurrent fetches racing a compaction/truncation loop must stay
  consistent (no torn views, no exceptions).
"""

import threading

import pytest

from repro.common.clock import ManualClock
from repro.fabric.cluster import FabricCluster
from repro.fabric.partition import PartitionLog
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.record import EventRecord, PackedRecordBatch, PackedView
from repro.fabric.retention import compact
from repro.fabric.topic import TopicConfig


def _fill(log, count, *, key=None):
    log.append_batch(
        [EventRecord(value=i, key=key(i) if key else None) for i in range(count)],
        append_time=1.0,
    )


class TestFetchViewSnapshotIsolation:
    def test_held_view_survives_truncation(self):
        log = PartitionLog("t", 0, segment_records=8)
        _fill(log, 40)
        view = log.fetch(0, max_records=40)
        before = [(r.offset, r.record.value) for r in view]
        log.truncate_before(30)
        assert [(r.offset, r.record.value) for r in view] == before
        assert log.log_start_offset == 30

    def test_held_view_survives_compaction(self):
        log = PartitionLog("t", 0, segment_records=8)
        _fill(log, 30, key=lambda i: f"k{i % 3}")
        view = log.fetch(0, max_records=30)
        before = [(r.offset, r.record.value) for r in view]
        removed = compact(log)
        assert removed > 0
        assert [(r.offset, r.record.value) for r in view] == before

    def test_view_is_packed_and_list_compatible(self):
        log = PartitionLog("t", 0, segment_records=8)
        _fill(log, 20)
        view = log.fetch(3, max_records=10)
        assert isinstance(view, PackedView)
        as_list = list(view)
        assert view == as_list
        assert len(view) == 10
        assert view[0].offset == 3 and view[-1].offset == 12
        assert (view + [])[:3] == as_list[:3]


class TestWireBytesImmutability:
    def _batch(self):
        records = tuple(
            EventRecord(
                value={"n": i, "tags": ["a", "b"]},
                key=f"k{i}",
                headers={"h": str(i)},
                timestamp=float(i),
            )
            for i in range(5)
        )
        return PackedRecordBatch.from_events(records, base_offset=100, append_time=2.0)

    def test_mutating_decoded_record_does_not_corrupt_payload(self):
        packed = self._batch()
        wire = packed.to_bytes()
        received = PackedRecordBatch.from_bytes(wire, base_offset=100)
        victim = received.record_at(2)
        victim.headers["evil"] = "yes"
        victim.value["tags"].append("corrupted")
        # The sealed wire image is unchanged, and a fresh decode of the
        # same bytes sees the original record.
        assert received.to_bytes() == wire
        fresh = PackedRecordBatch.from_bytes(wire, base_offset=100)
        assert fresh.record_at(2).headers == {"h": "2"}
        assert fresh.record_at(2).value == {"n": 2, "tags": ["a", "b"]}

    def test_slice_shares_payload_but_restamps_cleanly(self):
        packed = self._batch()
        packed.ensure_payload()
        part = packed.slice(1, 4)
        assert len(part) == 3
        assert part.offset_at(0) == 101
        assert [part.record_at(i).value["n"] for i in range(3)] == [1, 2, 3]
        restamped = part.with_offsets(0, 9.0)
        assert restamped.offset_at(2) == 2
        # Restamping never touches the originals.
        assert packed.offset_at(1) == 101 and packed.min_append_time == 2.0

    def test_header_overlay_leaves_base_records_untouched(self):
        packed = self._batch()
        overlaid = packed.with_header_overlay(
            lambda source_offset: {"mirror.source.offset": str(source_offset)}
        )
        decorated = overlaid.record_at(3)
        assert decorated.headers == {"h": "3", "mirror.source.offset": "103"}
        # The shared base record is untouched by the overlay decode.
        assert packed.record_at(3).headers == {"h": "3"}
        # Destination restamping preserves the *source* offsets captured
        # at overlay time.
        restamped = overlaid.with_offsets(500, 9.0)
        assert restamped.record_at(3).headers["mirror.source.offset"] == "103"


class TestConcurrentFetchAndCompaction:
    def test_fetch_race_with_compact_and_truncate(self):
        log = PartitionLog("t", 0, segment_records=16)
        _fill(log, 200, key=lambda i: f"k{i % 5}")
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    start = log.log_start_offset
                    try:
                        view = log.fetch(start, max_records=64)
                    except Exception as exc:  # OffsetOutOfRange race is the
                        # one legal failure: a concurrent truncate moved the
                        # start between the read and the fetch.
                        if type(exc).__name__ != "OffsetOutOfRangeError":
                            raise
                        continue
                    materialized = list(view)
                    offsets = [r.offset for r in materialized]
                    # A view, once taken, is internally consistent:
                    # strictly increasing offsets and stable on re-read.
                    assert offsets == sorted(set(offsets))
                    assert [r.offset for r in view] == offsets
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(30):
                compact(log)
                log.truncate_before(min(log.log_start_offset + 3, log.log_end_offset))
                log.append_batch(
                    [EventRecord(value=(round_index, i), key=f"k{i % 5}")
                     for i in range(10)],
                    append_time=float(round_index + 10),
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not errors


class TestProducerClockThreading:
    def test_producer_timestamps_come_from_injected_clock(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic("t", TopicConfig(num_partitions=1))
        clock = ManualClock(start=1_000.0)
        producer = FabricProducer(
            cluster, ProducerConfig(retries=0), clock=clock
        )
        producer.send("t", "one")
        clock.advance(5.0)
        producer.send_batch("t", ["two", "three"])
        clock.advance(2.0)
        producer.buffer("t", "four")
        producer.flush()
        records = cluster.fetch("t", 0, 0, max_records=10)
        timestamps = [r.record.timestamp for r in records]
        assert timestamps == [1_000.0, 1_005.0, 1_005.0, 1_007.0]

    def test_explicit_timestamp_still_wins(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic("t", TopicConfig(num_partitions=1))
        producer = FabricProducer(
            cluster, ProducerConfig(retries=0), clock=ManualClock(start=50.0)
        )
        producer.send("t", "v", timestamp=123.5)
        [stored] = cluster.fetch("t", 0, 0, max_records=1)
        assert stored.record.timestamp == 123.5


class TestControlPlaneShimsRemoved:
    @pytest.mark.parametrize(
        "name",
        [
            "create_topic", "delete_topic", "update_topic_config",
            "set_partitions", "fail_broker", "restore_broker",
            "run_retention", "set_authorizer", "add_persistence_sink",
            "describe",
        ],
    )
    def test_shim_is_gone(self, name):
        cluster = FabricCluster(num_brokers=1)
        assert not hasattr(cluster, name)
