"""Chaos harness: deterministic fault plans, fencing, HW and convergence.

PR 10's determinism contract: a :class:`FaultPlan` is a pure function of
its seed, a :class:`FaultInjector` applies it through the chaos seams as
the manual clock advances, and :func:`run_chaos_scenario` must produce a
byte-identical report when re-run with the same seed.  The safety
invariants the scenario checks — committed fetches never cross the high
watermark, one accepting leader per epoch, stale epochs stay fenced,
replicas converge after heal — are also pinned here as unit tests on
hand-built clusters, and as Hypothesis properties over the seed space
(budget-scaled by the nightly soak profile).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import ManualClock
from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import CorruptBatchError, FencedLeaderError
from repro.fabric.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    _record_hashes,
    main,
    run_chaos_scenario,
)
from repro.fabric.record import EventRecord, PackedRecordBatch
from repro.fabric.topic import TopicConfig


def _cluster(num_brokers=3, partitions=2, **config):
    clock = ManualClock()
    cluster = FabricCluster(num_brokers=num_brokers, name="chaos-test", clock=clock)
    cluster.admin().create_topic(
        "chaos",
        TopicConfig(
            num_partitions=partitions,
            replication_factor=min(3, num_brokers),
            min_insync_replicas=1,
            **config,
        ),
    )
    return cluster, clock


def _produce(cluster, partition, count, *, start=0):
    for i in range(start, start + count):
        cluster.append(
            "chaos", partition, EventRecord(value={"n": i}, key=f"k{i}"), acks=1
        )


# --------------------------------------------------------------------- #
# Plan generation
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(brokers=[0, 1, 2], topic="chaos", partitions=2)
        a = FaultPlan.generate(7, **kwargs)
        b = FaultPlan.generate(7, **kwargs)
        assert a == b
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        kwargs = dict(brokers=[0, 1, 2], topic="chaos", partitions=2)
        assert (
            FaultPlan.generate(1, **kwargs).digest()
            != FaultPlan.generate(2, **kwargs).digest()
        )

    def test_events_are_time_ordered_and_valid(self):
        plan = FaultPlan.generate(
            3, brokers=[0, 1, 2], topic="chaos", partitions=2, events=30
        )
        times = [event.at for event in plan.events]
        assert times == sorted(times)
        assert len(plan.events) == 30
        for event in plan.events:
            assert event.kind in FAULT_KINDS

    def test_describe_round_trips_through_json(self):
        plan = FaultPlan.generate(5, brokers=[0, 1], topic="chaos", partitions=1)
        assert json.loads(json.dumps(plan.describe())) == plan.describe()

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=1.0, kind="meteor_strike", broker_id=0)
        with pytest.raises(ValueError):
            FaultEvent(at=1.0, kind="link_drop", broker_id=0)  # no peer
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, kind="broker_crash", broker_id=0)


# --------------------------------------------------------------------- #
# Injector mechanics against a live cluster
# --------------------------------------------------------------------- #
class TestFaultInjector:
    def _injector(self, cluster, events):
        injector = FaultInjector(cluster, FaultPlan(seed=0, events=tuple(events)))
        injector.install()
        return injector

    def test_events_fire_only_when_due(self):
        cluster, clock = _cluster()
        injector = self._injector(
            cluster,
            [
                FaultEvent(at=1.0, kind="slow_disk", broker_id=0, delay_seconds=0.1),
                FaultEvent(at=5.0, kind="slow_disk_clear", broker_id=0),
            ],
        )
        assert injector.step() == []
        clock.advance(1.0)
        fired = injector.step()
        assert [e.kind for e, _ in fired] == ["slow_disk"]
        clock.advance(10.0)
        assert [e.kind for e, _ in injector.step()] == ["slow_disk_clear"]
        assert [outcome for _, outcome in injector.applied] == ["applied", "applied"]

    def test_link_drop_excludes_follower_from_isr(self):
        cluster, clock = _cluster()
        assignment = cluster._replication.assignment("chaos", 0)
        follower = next(b for b in assignment.replicas if b != assignment.leader)
        injector = self._injector(
            cluster,
            [
                FaultEvent(
                    at=0.5,
                    kind="link_drop",
                    broker_id=assignment.leader,
                    peer_id=follower,
                )
            ],
        )
        clock.advance(1.0)
        injector.step()
        _produce(cluster, 0, 4)
        assert follower not in assignment.isr
        follower_log = cluster._brokers[follower].replica("chaos", 0)
        leader_log = cluster._brokers[assignment.leader].replica("chaos", 0)
        assert follower_log.log_end_offset < leader_log.log_end_offset
        # Heal the link: the next pass catches the follower up.
        injector.heal()
        cluster._replication.replicate_from_leader("chaos", 0)
        assert follower in assignment.isr
        assert follower_log.log_end_offset == leader_log.log_end_offset

    def test_link_duplicate_is_absorbed_by_offset_dedup(self):
        cluster, clock = _cluster()
        assignment = cluster._replication.assignment("chaos", 0)
        follower = next(b for b in assignment.replicas if b != assignment.leader)
        injector = self._injector(
            cluster,
            [
                FaultEvent(
                    at=0.5,
                    kind="link_duplicate",
                    broker_id=assignment.leader,
                    peer_id=follower,
                )
            ],
        )
        clock.advance(1.0)
        injector.step()
        _produce(cluster, 0, 6)
        leader_log = cluster._brokers[assignment.leader].replica("chaos", 0)
        follower_log = cluster._brokers[follower].replica("chaos", 0)
        assert follower_log.log_end_offset == leader_log.log_end_offset
        values = [
            s.record.value["n"]
            for s in follower_log.fetch(0, max_records=100, max_bytes=None)
        ]
        assert values == list(range(6))  # no doubled records

    def test_chunk_corruption_fails_one_replication_then_heals(self):
        cluster, clock = _cluster()
        assignment = cluster._replication.assignment("chaos", 0)
        follower = next(b for b in assignment.replicas if b != assignment.leader)
        injector = self._injector(
            cluster,
            [FaultEvent(at=0.5, kind="chunk_corruption", broker_id=follower)],
        )
        clock.advance(1.0)
        injector.step()
        _produce(cluster, 0, 1)
        # The injected CRC failure dropped the follower from the ISR for
        # that round; the corruption budget is spent, so the next
        # replication pass re-syncs it.
        assert follower not in assignment.isr
        cluster._replication.replicate_from_leader("chaos", 0)
        assert follower in assignment.isr

    def test_corruption_hook_raises_at_replicate_ingress(self):
        cluster, clock = _cluster()
        assignment = cluster._replication.assignment("chaos", 0)
        follower_id = next(b for b in assignment.replicas if b != assignment.leader)
        injector = self._injector(
            cluster,
            [FaultEvent(at=0.5, kind="chunk_corruption", broker_id=follower_id)],
        )
        clock.advance(1.0)
        injector.step()
        packed = PackedRecordBatch.from_events(
            (EventRecord(value={"x": 1}),), append_time=clock.now()
        )
        with pytest.raises(CorruptBatchError):
            cluster._brokers[follower_id].replicate("chaos", 0, packed)

    def test_slow_disk_advances_manual_clock(self):
        cluster, clock = _cluster()
        injector = self._injector(
            cluster,
            [
                FaultEvent(
                    at=0.5, kind="slow_disk", broker_id=0, delay_seconds=0.25
                )
            ],
        )
        clock.advance(1.0)
        injector.step()
        before = clock.now()
        cluster._brokers[0].fetch("chaos", 0, 0, isolation="uncommitted")
        assert clock.now() == pytest.approx(before + 0.25)

    def test_crash_is_skipped_for_last_online_broker(self):
        cluster, clock = _cluster(num_brokers=1, partitions=1)
        injector = self._injector(
            cluster, [FaultEvent(at=0.5, kind="broker_crash", broker_id=0)]
        )
        clock.advance(1.0)
        injector.step()
        assert injector.applied[0][1] == "skipped"
        assert cluster._brokers[0].online

    def test_crash_elects_new_fenced_leader(self):
        cluster, clock = _cluster()
        assignment = cluster._replication.assignment("chaos", 0)
        old_leader = assignment.leader
        _produce(cluster, 0, 4)
        injector = self._injector(
            cluster, [FaultEvent(at=0.5, kind="broker_crash", broker_id=old_leader)]
        )
        clock.advance(1.0)
        injector.step()
        assert assignment.leader != old_leader
        assert assignment.leader_epoch == 1
        # The deposed epoch is fenced on the new leader's log.
        packed = PackedRecordBatch.from_events(
            (EventRecord(value={"stale": True}),), append_time=clock.now()
        )
        with pytest.raises(FencedLeaderError):
            cluster._brokers[assignment.leader].append_packed(
                "chaos", 0, packed, leader_epoch=0
            )

    def test_append_listener_records_leader_epochs(self):
        cluster, clock = _cluster()
        injector = self._injector(cluster, [])
        _produce(cluster, 0, 3)
        partition_appends = [
            entry for entry in injector.appends if entry[1:3] == ("chaos", 0)
        ]
        assert partition_appends
        leaders = {entry[0] for entry in partition_appends}
        epochs = {entry[3] for entry in partition_appends}
        assert len(leaders) == 1 and epochs == {0}

    def test_uninstall_restores_normal_behavior(self):
        cluster, clock = _cluster()
        injector = self._injector(
            cluster,
            [FaultEvent(at=0.5, kind="slow_disk", broker_id=0, delay_seconds=9.0)],
        )
        clock.advance(1.0)
        injector.step()
        injector.uninstall()
        before = clock.now()
        cluster._brokers[0].fetch("chaos", 0, 0, isolation="uncommitted")
        assert clock.now() == before  # no stall: hook is gone


# --------------------------------------------------------------------- #
# Fork truncation on epoch handoff
# --------------------------------------------------------------------- #
class TestForkTruncation:
    """A deposed leader's uncommitted suffix must not survive failover.

    End-offset catch-up alone lines the logs up while leaving a silent
    content fork in the middle; the fabric must rebuild the forked
    replica (it cannot split sealed chunks) when it rejoins past the new
    leader's epoch-start offset.
    """

    def test_restored_deposed_leader_discards_forked_suffix(self):
        cluster, clock = _cluster(partitions=1)
        replication = cluster._replication
        admin = cluster.admin()
        assignment = replication.assignment("chaos", 0)
        old_leader = assignment.leader

        _produce(cluster, 0, 3)  # committed on all three replicas

        # Partition the old leader from both followers, then keep
        # producing: these records land only on the old leader.
        replication.set_link_filter(lambda l, f, t, p: "drop")
        _produce(cluster, 0, 4, start=3)
        replication.set_link_filter(None)

        admin.fail_broker(old_leader)
        new_leader = replication.assignment("chaos", 0).leader
        assert new_leader != old_leader
        # The new leadership writes different history at those offsets.
        for i in range(5):
            cluster.append(
                "chaos", 0,
                EventRecord(value={"fork": i}, key=f"f{i}"), acks=1,
            )

        admin.restore_broker(old_leader)
        replication.replicate_from_leader("chaos", 0)

        hashes = _record_hashes(cluster, "chaos", 1)["0"]
        assert len(set(hashes.values())) == 1, hashes
        leader_log = cluster._brokers[new_leader].replica("chaos", 0)
        old_log = cluster._brokers[old_leader].replica("chaos", 0)
        assert old_log.log_end_offset == leader_log.log_end_offset

    def test_follower_ahead_of_new_leader_is_rebuilt_at_election(self):
        cluster, clock = _cluster(partitions=1)
        replication = cluster._replication
        admin = cluster.admin()
        assignment = replication.assignment("chaos", 0)
        leader = assignment.leader
        ahead, behind = [b for b in assignment.replicas if b != leader]

        _produce(cluster, 0, 2)  # shared committed prefix

        # One follower misses a round: it falls behind its peer.
        replication.set_link_filter(
            lambda l, f, t, p: "drop" if f == behind else "ok"
        )
        _produce(cluster, 0, 3, start=2)
        replication.set_link_filter(None)
        assert (
            cluster._brokers[ahead].replica("chaos", 0).log_end_offset
            > cluster._brokers[behind].replica("chaos", 0).log_end_offset
        )

        # Force the *behind* replica to win the election: with the whole
        # ISR offline the fallback picks the first online replica.
        admin.fail_broker(ahead)
        admin.fail_broker(leader)
        new_assignment = replication.assignment("chaos", 0)
        assert new_assignment.leader == behind
        new_leader_log = cluster._brokers[behind].replica("chaos", 0)

        # The ahead replica restores mid-epoch: its extra records were a
        # deposed leadership's suffix and must be discarded, not kept.
        admin.restore_broker(ahead)
        for i in range(4):
            cluster.append(
                "chaos", 0,
                EventRecord(value={"fork": i}, key=f"f{i}"), acks=1,
            )
        admin.restore_broker(leader)
        replication.replicate_from_leader("chaos", 0)

        hashes = _record_hashes(cluster, "chaos", 1)["0"]
        assert len(set(hashes.values())) == 1, hashes
        assert (
            cluster._brokers[ahead].replica("chaos", 0).log_end_offset
            == new_leader_log.log_end_offset
        )

    def test_lagging_follower_without_fork_keeps_its_prefix(self):
        """A follower merely *behind* (no fork) must catch up in place."""
        cluster, clock = _cluster(partitions=1)
        replication = cluster._replication
        admin = cluster.admin()
        assignment = replication.assignment("chaos", 0)
        leader = assignment.leader
        follower = next(b for b in assignment.replicas if b != leader)

        _produce(cluster, 0, 3)
        admin.fail_broker(follower)
        _produce(cluster, 0, 4, start=3)  # follower misses these
        admin.fail_broker(leader)  # election: follower offline, epoch bumps
        admin.restore_broker(leader)
        admin.restore_broker(follower)
        replication.replicate_from_leader("chaos", 0)

        hashes = _record_hashes(cluster, "chaos", 1)["0"]
        assert len(set(hashes.values())) == 1, hashes


# --------------------------------------------------------------------- #
# End-to-end scenario determinism (the CI chaos gate runs this twice)
# --------------------------------------------------------------------- #
class TestScenarioDeterminism:
    def test_same_seed_identical_report(self):
        a = run_chaos_scenario(11, ticks=20, events=10)
        b = run_chaos_scenario(11, ticks=20, events=10)
        assert a == b
        assert a["state_digest"] == b["state_digest"]

    def test_different_seeds_diverge(self):
        a = run_chaos_scenario(1, ticks=20, events=10)
        b = run_chaos_scenario(2, ticks=20, events=10)
        assert a["plan_digest"] != b["plan_digest"]
        assert a["state_digest"] != b["state_digest"]

    def test_report_is_json_serializable_and_clean(self):
        report = run_chaos_scenario(42, ticks=20, events=10)
        json.dumps(report)
        assert report["invariant_violations"] == []
        assert report["produced"] > 0

    def test_cli_exit_codes_and_json(self, capsys):
        assert main(["--seed", "5", "--ticks", "12", "--events", "6"]) == 0
        out = capsys.readouterr().out
        assert "seed=5" in out and "violations=0" in out
        assert (
            main(["--seed", "5", "--ticks", "12", "--events", "6", "--json"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["seed"] == 5


# --------------------------------------------------------------------- #
# Chaos properties over the seed space (nightly soak scales the budget)
# --------------------------------------------------------------------- #
class TestChaosProperties:
    """Each property runs a full scenario and asserts one invariant class.

    ``run_chaos_scenario`` tags every violation with identifying text, so
    filtering the violation list per property keeps the failure message
    specific while sharing one scenario engine.  ``max_examples`` is left
    unpinned on purpose: the nightly soak profile (see tests/conftest.py)
    scales these to a much larger seed sweep.
    """

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_no_committed_fetch_above_high_watermark(self, seed):
        report = run_chaos_scenario(seed, ticks=16, events=8)
        hw_violations = [
            v for v in report["invariant_violations"] if "high watermark" in v
        ]
        assert hw_violations == []

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_single_accepting_leader_per_epoch_and_fencing(self, seed):
        report = run_chaos_scenario(seed, ticks=16, events=8)
        fencing_violations = [
            v
            for v in report["invariant_violations"]
            if "epoch" in v  # covers both two-leaders and stale-accept
        ]
        assert fencing_violations == []

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_replicas_converge_after_heal(self, seed):
        report = run_chaos_scenario(seed, ticks=16, events=8)
        divergence = [
            v for v in report["invariant_violations"] if "diverged" in v
        ]
        assert divergence == []
        for per_replica in report["record_hashes"].values():
            assert len(set(per_replica.values())) <= 1
