"""Tests for the append-only partition log."""

import pytest

from repro.fabric.errors import OffsetOutOfRangeError, RecordTooLargeError
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord


def make_log(**kwargs) -> PartitionLog:
    return PartitionLog("topic", 0, **kwargs)


class TestAppend:
    def test_offsets_are_contiguous_from_zero(self):
        log = make_log()
        offsets = [log.append(EventRecord(value=i)) for i in range(10)]
        assert offsets == list(range(10))
        assert log.log_end_offset == 10
        assert log.log_start_offset == 0

    def test_append_batch_returns_offsets_in_order(self):
        log = make_log()
        offsets = log.append_batch([EventRecord(value=i) for i in range(5)])
        assert offsets == [0, 1, 2, 3, 4]

    def test_oversize_record_rejected(self):
        log = make_log(max_message_bytes=64)
        with pytest.raises(RecordTooLargeError):
            log.append(EventRecord(value=b"x" * 100))
        assert log.log_end_offset == 0

    def test_counters_track_lifetime_appends(self):
        log = make_log()
        for i in range(5):
            log.append(EventRecord(value=b"x" * 10))
        log.truncate_before(3)
        assert log.total_appended == 5
        assert len(log) == 2


class TestFetch:
    def test_fetch_from_offset_returns_following_records(self):
        log = make_log()
        for i in range(10):
            log.append(EventRecord(value=i))
        records = log.fetch(4, max_records=3)
        assert [r.offset for r in records] == [4, 5, 6]
        assert [r.value for r in records] == [4, 5, 6]

    def test_fetch_at_log_end_returns_empty(self):
        log = make_log()
        log.append(EventRecord(value=1))
        assert log.fetch(1) == []

    def test_fetch_beyond_end_raises(self):
        log = make_log()
        log.append(EventRecord(value=1))
        with pytest.raises(OffsetOutOfRangeError):
            log.fetch(5)

    def test_fetch_below_log_start_raises(self):
        log = make_log()
        for i in range(10):
            log.append(EventRecord(value=i))
        log.truncate_before(5)
        with pytest.raises(OffsetOutOfRangeError):
            log.fetch(2)

    def test_fetch_respects_max_bytes(self):
        log = make_log()
        for i in range(10):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        records = log.fetch(0, max_records=10, max_bytes=250)
        assert len(records) == 2  # 100 B each; a third would exceed the budget

    def test_fetch_max_bytes_always_returns_at_least_one(self):
        log = make_log()
        log.append(EventRecord(value=b"x" * 1000))
        assert len(log.fetch(0, max_bytes=10)) == 1


class TestTimestampLookup:
    def test_offset_for_timestamp_finds_first_at_or_after(self):
        log = make_log()
        for ts in (100.0, 200.0, 300.0):
            log.append(EventRecord(value=ts), append_time=ts)
        assert log.offset_for_timestamp(150.0) == 1
        assert log.offset_for_timestamp(200.0) == 1
        assert log.offset_for_timestamp(50.0) == 0

    def test_offset_for_timestamp_none_when_all_older(self):
        log = make_log()
        log.append(EventRecord(value=1), append_time=100.0)
        assert log.offset_for_timestamp(500.0) is None

    def test_offset_for_timestamp_searches_append_time_not_record_timestamp(self):
        """The lookup runs on the log-assigned append time: client-supplied
        record timestamps carry no ordering guarantee, so a producer
        shipping out-of-order timestamps must not corrupt the search."""
        log = make_log()
        for when, ts in enumerate((500.0, 100.0, 900.0), start=1):
            # Client timestamps zig-zag; log append times advance 1.0, 2.0, 3.0.
            log.append(EventRecord(value=ts, timestamp=ts), append_time=float(when))
        assert log.offset_for_timestamp(1.0) == 0
        assert log.offset_for_timestamp(2.0) == 1
        assert log.offset_for_timestamp(3.0) == 2
        assert log.offset_for_timestamp(4.0) is None

    def test_log_assigned_append_times_are_monotone(self):
        """With no explicit append_time the log assigns a non-decreasing
        clock, even after a caller pinned a future explicit time."""
        log = make_log()
        log.append(EventRecord(value=0), append_time=10e12)  # far future
        log.append(EventRecord(value=1))  # wall clock is behind: clamped
        times = [r.append_time for r in log.read_all()]
        assert times == sorted(times)


class TestTruncation:
    def test_truncate_before_advances_log_start(self):
        log = make_log()
        for i in range(10):
            log.append(EventRecord(value=i))
        removed = log.truncate_before(6)
        assert removed == 6
        assert log.log_start_offset == 6
        assert [r.offset for r in log.fetch(6)] == [6, 7, 8, 9]

    def test_truncate_is_idempotent(self):
        log = make_log()
        for i in range(5):
            log.append(EventRecord(value=i))
        log.truncate_before(3)
        assert log.truncate_before(3) == 0

    def test_truncate_never_renumbers_offsets(self):
        log = make_log()
        for i in range(5):
            log.append(EventRecord(value=i))
        log.truncate_before(2)
        log.append(EventRecord(value="new"))
        assert log.log_end_offset == 6
        assert log.fetch(5)[0].value == "new"

    def test_replace_records_rejects_disordered_offsets(self):
        log = make_log()
        for i in range(5):
            log.append(EventRecord(value=i))
        records = list(log.read_all())
        with pytest.raises(ValueError):
            log.replace_records([records[3], records[1]])

    def test_replace_records_rejects_future_offsets(self):
        from repro.fabric.record import StoredRecord

        log = make_log()
        log.append(EventRecord(value=0))
        bogus = StoredRecord(offset=10, record=EventRecord(value="x"), append_time=0.0)
        with pytest.raises(ValueError):
            log.replace_records([bogus])
