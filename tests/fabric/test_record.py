"""Tests for event records, batches and serde."""

import json

import pytest

from repro.fabric.record import EventRecord, RecordBatch, StoredRecord
from repro.fabric.serde import deserialize, serialize, serialized_size


class TestEventRecord:
    def test_size_includes_framing_overhead(self):
        record = EventRecord(value=b"x" * 100)
        assert record.size_bytes() == 100 + 24

    def test_size_includes_key_and_headers(self):
        bare = EventRecord(value=b"x" * 10)
        keyed = EventRecord(value=b"x" * 10, key="instrument-7")
        with_headers = EventRecord(value=b"x" * 10, headers={"source": "sdl"})
        assert keyed.size_bytes() > bare.size_bytes()
        assert with_headers.size_bytes() > bare.size_bytes()

    def test_record_ids_are_unique_and_increasing(self):
        a = EventRecord(value=1)
        b = EventRecord(value=2)
        assert b.record_id > a.record_id

    def test_with_headers_merges_without_mutating_original(self):
        record = EventRecord(value="v", headers={"a": "1"})
        updated = record.with_headers(b="2")
        assert updated.headers == {"a": "1", "b": "2"}
        assert record.headers == {"a": "1"}
        assert updated.record_id == record.record_id

    def test_dict_round_trip(self):
        record = EventRecord(value={"event_type": "created"}, key="file-1",
                             headers={"fs": "lustre"})
        restored = EventRecord.from_dict(record.to_dict())
        assert restored.value == record.value
        assert restored.key == record.key
        assert dict(restored.headers) == dict(record.headers)
        assert restored.timestamp == pytest.approx(record.timestamp)

    def test_to_json_is_valid_json(self):
        record = EventRecord(value={"a": 1}, key="k")
        parsed = json.loads(record.to_json())
        assert parsed["value"] == {"a": 1}


class TestStoredRecord:
    def test_delegates_to_wrapped_record(self):
        record = EventRecord(value={"x": 1}, key="k")
        stored = StoredRecord(offset=5, record=record, append_time=record.timestamp)
        assert stored.value == {"x": 1}
        assert stored.key == "k"
        assert stored.offset == 5
        assert stored.size_bytes() == record.size_bytes()


class TestRecordBatch:
    def test_batch_accumulates_until_max_bytes(self):
        batch = RecordBatch("t", 0, max_bytes=300)
        added = 0
        while batch.try_append(EventRecord(value=b"x" * 76)):  # 100 B each
            added += 1
            if added > 10:
                break
        assert added == 3
        assert len(batch) == 3

    def test_empty_batch_accepts_oversize_record(self):
        batch = RecordBatch("t", 0, max_bytes=10)
        assert batch.try_append(EventRecord(value=b"x" * 1000))
        assert not batch.try_append(EventRecord(value=b"y"))

    def test_of_builds_batch_from_iterable(self):
        records = [EventRecord(value=i) for i in range(5)]
        batch = RecordBatch.of("t", 1, records)
        assert len(batch) == 5
        assert list(batch) == records
        assert batch.partition == 1


class TestSerde:
    @pytest.mark.parametrize(
        "value",
        [None, b"raw-bytes", "text", {"a": 1, "b": [1, 2]}, [1, 2, 3], 42, 3.14, True],
    )
    def test_round_trip_preserves_json_values(self, value):
        restored = deserialize(serialize(value))
        if isinstance(value, bytes):
            assert restored in (value, value.decode("utf-8"))
        elif isinstance(value, tuple):
            assert restored == list(value)
        else:
            assert restored == value

    def test_serialized_size_matches_serialize_length_for_objects(self):
        value = {"payload": "x" * 100, "n": 7}
        assert serialized_size(value) == len(serialize(value))

    def test_serialized_size_fast_paths(self):
        assert serialized_size(None) == 0
        assert serialized_size(b"abcd") == 4
        assert serialized_size("abcd") == 4
        assert serialized_size(12345) == 5


class TestSingleEncodePass:
    """The serde seam guarantees one JSON encode per record end to end:
    ``size_bytes`` caches the encoded body and the wire packer reuses it,
    so size accounting + sealing never serializes a value twice."""

    @pytest.fixture
    def encode_counter(self, monkeypatch):
        import repro.fabric.serde as serde

        counts = {"encodes": 0}
        real = serde._json_encode

        def counting(value):
            counts["encodes"] += 1
            return real(value)

        monkeypatch.setattr(serde, "_json_encode", counting)
        return counts

    def test_serialized_size_is_one_encode(self, encode_counter):
        serialized_size({"a": 1, "nested": {"b": [1, 2, 3]}})
        assert encode_counter["encodes"] == 1

    def test_size_then_seal_is_one_encode_per_record(self, encode_counter):
        from repro.fabric.record import PackedRecordBatch

        records = tuple(
            EventRecord(value={"n": i, "payload": "z" * 30}, key=f"k{i}")
            for i in range(6)
        )
        for record in records:
            record.size_bytes()  # producer accounting pays the encode...
        assert encode_counter["encodes"] == len(records)
        packed = PackedRecordBatch.from_events(records, append_time=1.0)
        packed.seal_wire("gzip").to_bytes()  # ...and sealing reuses it
        assert encode_counter["encodes"] == len(records)

    def test_text_and_bytes_values_never_json_encode(self, encode_counter):
        from repro.fabric.record import PackedRecordBatch

        records = tuple(
            EventRecord(value=v) for v in ("text", b"raw", None)
        )
        for record in records:
            record.size_bytes()
        PackedRecordBatch.from_events(records, append_time=1.0).seal_wire(
            "none"
        ).to_bytes()
        assert encode_counter["encodes"] == 0
