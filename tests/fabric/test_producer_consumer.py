"""Tests for producer and consumer clients against the fabric."""

import time

import pytest

from repro.fabric import (
    ConsumerConfig,
    FabricCluster,
    FabricConsumer,
    FabricProducer,
    ProducerConfig,
    TopicConfig,
)
from repro.common.clock import ManualClock
from repro.fabric.errors import CommitFailedError, NotLeaderError
from repro.fabric.partitioner import Partitioner, hash_key


@pytest.fixture
def cluster():
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic("events", TopicConfig(num_partitions=4, replication_factor=2))
    return cluster


class TestPartitioner:
    def test_keyed_records_are_stable(self):
        partitioner = Partitioner()
        first = partitioner.partition("experiment-42", 8)
        assert all(partitioner.partition("experiment-42", 8) == first for _ in range(20))

    def test_unkeyed_records_round_robin_over_all_partitions(self):
        partitioner = Partitioner()
        chosen = {partitioner.partition(None, 4) for _ in range(8)}
        assert chosen == {0, 1, 2, 3}

    def test_explicit_partition_wins(self):
        partitioner = Partitioner()
        assert partitioner.partition("key", 4, explicit=2) == 2

    def test_explicit_partition_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Partitioner().partition(None, 4, explicit=9)

    def test_hash_key_is_deterministic_across_instances(self):
        assert hash_key("abc") == hash_key("abc")
        assert hash_key(b"abc") == hash_key("abc")


class TestProducer:
    def test_send_returns_metadata(self, cluster):
        producer = FabricProducer(cluster)
        md = producer.send("events", {"step": 1}, key="exp-1")
        assert md.topic == "events"
        assert md.offset == 0
        assert producer.metrics.records_sent == 1

    def test_same_key_goes_to_same_partition(self, cluster):
        producer = FabricProducer(cluster)
        partitions = {producer.send("events", i, key="robot-3").partition for i in range(10)}
        assert len(partitions) == 1

    def test_invalid_acks_rejected(self):
        with pytest.raises(ValueError):
            ProducerConfig(acks="two").validate()

    def test_retries_on_retriable_error_then_succeeds(self, cluster):
        attempts = {"n": 0}
        real_append = cluster.append

        def flaky_append(*args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise NotLeaderError("transient leadership change")
            return real_append(*args, **kwargs)

        cluster.append = flaky_append  # type: ignore[assignment]
        producer = FabricProducer(
            cluster, ProducerConfig(retries=3, retry_backoff_seconds=0), sleep_fn=lambda s: None
        )
        md = producer.send("events", "v")
        assert md.offset == 0
        assert producer.metrics.retries == 2

    def test_retries_exhausted_raises(self, cluster):
        def always_fail(*args, **kwargs):
            raise NotLeaderError("still not leader")

        cluster.append = always_fail  # type: ignore[assignment]
        producer = FabricProducer(
            cluster, ProducerConfig(retries=2, retry_backoff_seconds=0), sleep_fn=lambda s: None
        )
        with pytest.raises(NotLeaderError):
            producer.send("events", "v")
        assert producer.metrics.records_failed == 1

    def test_buffer_and_flush_delivers_everything(self, cluster):
        producer = FabricProducer(cluster)
        for i in range(20):
            producer.buffer("events", {"i": i}, key=str(i % 2))
        assert producer.buffered_bytes > 0
        metadata = producer.flush()
        assert len(metadata) == 20
        assert producer.buffered_bytes == 0

    def test_buffer_full_raises(self, cluster):
        producer = FabricProducer(cluster, ProducerConfig(buffer_memory_bytes=200))
        with pytest.raises(BufferError):
            for _ in range(100):
                producer.buffer("events", "x" * 50)

    def test_close_flushes_and_blocks_further_sends(self, cluster):
        producer = FabricProducer(cluster)
        producer.buffer("events", "pending")
        producer.close()
        assert cluster.end_offsets("events") != {0: 0, 1: 0, 2: 0, 3: 0}
        with pytest.raises(RuntimeError):
            producer.send("events", "nope")

    def test_context_manager_closes(self, cluster):
        with FabricProducer(cluster) as producer:
            producer.buffer("events", "v")
        total = sum(cluster.end_offsets("events").values())
        assert total == 1


class TestConsumer:
    def test_earliest_consumer_reads_backlog(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(10)))
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="g1"))
        assert sorted(r.value for r in consumer.poll_flat()) == list(range(10))

    def test_latest_consumer_skips_backlog(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(10)))
        consumer = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="g2", auto_offset_reset="latest"),
        )
        assert consumer.poll_flat() == []
        producer.send("events", "new")
        assert [r.value for r in consumer.poll_flat()] == ["new"]

    def test_timestamp_reset_starts_mid_stream(self, cluster):
        """``start_timestamp`` matches the broker-assigned append time —
        the client-supplied record timestamps (0.0..4.0 here, far in the
        past) no longer drive the reset point."""
        producer = FabricProducer(cluster)
        for i in range(3):
            producer.send("events", i, partition=0, timestamp=float(i))
        time.sleep(0.005)
        cut = time.time()
        time.sleep(0.005)
        for i in (3, 4):
            producer.send("events", i, partition=0, timestamp=float(i))
        consumer = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="g3", auto_offset_reset="timestamp", start_timestamp=cut),
        )
        assert sorted(r.value for r in consumer.poll_flat()) == [3, 4]

    def test_commit_and_resume_from_committed_offset(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(10)), partition=0)
        consumer = FabricConsumer(
            cluster, ["events"], ConsumerConfig(group_id="resume", enable_auto_commit=False)
        )
        first = consumer.poll_flat(max_records=4)
        consumer.commit()
        consumer.close()
        # A new consumer in the same group resumes where the commit left off.
        consumer2 = FabricConsumer(
            cluster, ["events"], ConsumerConfig(group_id="resume", enable_auto_commit=False)
        )
        rest = consumer2.poll_flat(max_records=100)
        assert len(first) + len(rest) == 10
        assert {r.value for r in first}.isdisjoint({r.value for r in rest})

    def test_uncommitted_records_are_redelivered(self, cluster):
        """At-least-once: a crash before commit re-reads the records."""
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(6)), partition=1)
        config = ConsumerConfig(group_id="alo", enable_auto_commit=False)
        consumer = FabricConsumer(cluster, ["events"], config)
        seen_first = [r.value for r in consumer.poll_flat()]
        assert len(seen_first) == 6
        # Simulated crash: no commit, no clean close.
        consumer2 = FabricConsumer(cluster, ["events"], config)
        # consumer2 only gets partitions after a rebalance kicks out the dead
        # member; simulate by having the first consumer leave ungracefully.
        cluster.groups.leave("alo", consumer.member_id, cluster.partitions_for("events"))
        seen_again = [r.value for r in consumer2.poll_flat()]
        assert sorted(seen_again) == sorted(seen_first)

    def test_group_splits_partitions_between_members(self, cluster):
        c1 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="team"))
        c2 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="team"))
        # Cooperative rebalance: c1's poll revokes its excess and promotes
        # the pending assignment; c2's poll then picks up the freed half.
        c1.poll()
        c2.poll()
        a1, a2 = set(c1.assignment()), set(c2.assignment())
        assert a1.isdisjoint(a2)
        assert a1 | a2 == set(cluster.partitions_for("events"))

    def test_rebalance_is_cooperative_and_sticky(self, cluster):
        """A new member must not disturb the partitions the incumbent
        retains: only the minimal delta is revoked, and the incumbent
        keeps fetching its retained partitions mid-rebalance."""
        producer = FabricProducer(cluster)
        for partition in range(4):
            producer.send_batch("events", list(range(4)), partition=partition)
        revoked, assigned = [], []
        c1 = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="coop", enable_auto_commit=False),
            on_partitions_revoked=revoked.extend,
            on_partitions_assigned=assigned.extend,
        )
        before = set(c1.assignment())
        assert len(before) == 4 and assigned == sorted(before)
        c2 = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="coop", enable_auto_commit=False),
        )
        # Mid-rebalance (revoke phase adopted on this poll) c1 still
        # serves its retained partitions — they never stall.
        batches = c1.poll()
        retained = set(c1.assignment())
        assert retained < before and len(retained) == 2
        assert set(batches) == retained
        assert sorted(revoked) == sorted(before - retained)
        # Once both members have polled the group settles: c1 keeps its
        # retained set untouched, c2 owns exactly the revoked delta.
        c2.poll()
        c1.poll()
        assert set(c1.assignment()) == retained
        assert set(c2.assignment()) == before - retained
        assert c1.metrics.partitions_revoked == 2

    def test_laggard_commit_on_revoke_cannot_rewind_new_owner(self, cluster):
        """Regression: partitions a slow consumer has not yet released must
        not be granted to newer members — the laggard's commit-on-revoke
        would otherwise land after (and rewind) the new owner's commits."""
        producer = FabricProducer(cluster)
        for partition in range(4):
            producer.send_batch("events", list(range(8)), partition=partition)
        c1 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="lag2"))
        while c1.poll_flat():
            pass  # positions at 8 everywhere, nothing committed yet
        c2 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="lag2"))
        c3 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="lag2"))
        # c1 has not acknowledged: newer members poll but receive nothing.
        c2.poll()
        c3.poll()
        assert c2.assignment() == [] and c3.assignment() == []
        # c1 acks on its poll; its commit-on-revoke lands *before* any
        # grant, so the new owners resume from 8 — never behind.
        c1.poll()
        c2.poll()
        c3.poll()
        owned = set(c1.assignment()) | set(c2.assignment()) | set(c3.assignment())
        assert owned == set(cluster.partitions_for("events"))
        for consumer in (c2, c3):
            for topic, partition in consumer.assignment():
                assert cluster.offsets.committed("lag2", topic, partition) == 8
            assert consumer.lag() == 0  # resumed, not rewound

    def test_consumer_close_survives_topic_deletion(self, cluster):
        """Regression: close() used to look the topic's partitions up and
        crash with UnknownTopicError, leaking the group membership."""
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="bye"))
        cluster.admin().delete_topic("events")
        consumer.close()
        assert cluster.groups.members("bye") == []

    def test_commit_on_revoke_preserves_progress(self, cluster):
        """An auto-committing consumer commits revoked partitions as it
        gives them up, so the new owner resumes instead of re-reading."""
        producer = FabricProducer(cluster)
        for partition in range(4):
            producer.send_batch("events", list(range(6)), partition=partition)
        c1 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="hand"))
        while c1.poll_flat():
            pass  # positions now at the end of every partition
        c2 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="hand"))
        c1.poll()  # adopt the revoke phase: commits the revoked half
        c2.poll()
        c2.poll()  # assign phase: c2 owns the revoked partitions
        assert set(c2.assignment())
        for topic, partition in c2.assignment():
            assert cluster.offsets.committed("hand", topic, partition) == 6
        assert c2.lag() == 0  # nothing is re-read: progress survived the move

    def test_two_groups_both_receive_all_events(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(8)))
        g1 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="a"))
        g2 = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="b"))
        assert sorted(r.value for r in g1.poll_flat()) == list(range(8))
        assert sorted(r.value for r in g2.poll_flat()) == list(range(8))

    def test_commit_with_stale_generation_fails(self, cluster):
        consumer = FabricConsumer(
            cluster, ["events"], ConsumerConfig(group_id="stale", enable_auto_commit=False)
        )
        # A second member joining bumps the generation.
        FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="stale"))
        with pytest.raises(CommitFailedError):
            consumer.commit()

    def test_seek_and_lag(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(10)), partition=2)
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="lag"))
        assert consumer.lag() == 10
        consumer.poll_flat()
        assert consumer.lag() == 0
        consumer.seek("events", 2, 5)
        assert consumer.lag() == 5

    def test_rebalance_prunes_revoked_positions(self, cluster):
        """Regression: after a rebalance the old owner's commit() used to
        clobber the new owner's committed offsets for revoked partitions."""
        producer = FabricProducer(cluster)
        for partition in range(4):
            producer.send_batch("events", list(range(8)), partition=partition)
        c1 = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="reb", enable_auto_commit=False),
        )
        # c1 owns everything and consumes only part of the backlog, so its
        # in-memory positions sit mid-stream on every partition.
        c1.poll_flat(max_records=8)
        c2 = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="reb", enable_auto_commit=False),
        )
        # c1 acknowledges the revocation, which completes the cooperative
        # rebalance and hands c2 its half of the partitions.
        c1.poll_flat(max_records=1)
        # c2 drains its half of the partitions and commits the end offsets.
        while c2.poll_flat():
            pass
        c2.commit()
        committed_by_c2 = {
            tp: c2.committed(*tp) for tp in c2.assignment()
        }
        assert all(offset == 8 for offset in committed_by_c2.values())
        # c1 rejoins on its next poll (pruning revoked positions) and commits.
        c1.poll_flat(max_records=1)
        c1.commit()
        for (topic, partition), offset in committed_by_c2.items():
            assert cluster.offsets.committed("reb", topic, partition) == offset

    def test_closed_consumer_rejects_poll(self, cluster):
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="x"))
        consumer.close()
        with pytest.raises(RuntimeError):
            consumer.poll()


class TestConsumerLiveness:
    """Clock-driven heartbeats, session expiry and zombie fencing."""

    def make_pair(self, clock):
        cluster = FabricCluster(num_brokers=2, clock=clock)
        cluster.admin().create_topic(
            "events", TopicConfig(num_partitions=4, replication_factor=2)
        )
        config = ConsumerConfig(
            group_id="live",
            enable_auto_commit=False,
            heartbeat_interval_seconds=3.0,
            session_timeout_seconds=10.0,
        )
        c1 = FabricConsumer(cluster, ["events"], config, clock=clock)
        c2 = FabricConsumer(cluster, ["events"], config, clock=clock)
        c1.poll()
        c2.poll()
        assert len(c1.assignment()) == 2 and len(c2.assignment()) == 2
        return cluster, c1, c2

    def test_heartbeat_interval_must_beat_effective_session_timeout(self):
        """Regression: with session_timeout_seconds unset, the coordinator
        default (30s) applies — a longer heartbeat interval would have the
        member evicted and rejoining forever despite being healthy."""
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic("events", TopicConfig(num_partitions=1))
        with pytest.raises(ValueError):
            FabricConsumer(
                cluster, ["events"],
                ConsumerConfig(heartbeat_interval_seconds=45.0),
            )

    def test_consumers_inherit_the_cluster_clock_by_default(self):
        """Regression: heartbeat pacing must share the coordinator's time
        base — a consumer on wall time against a ManualClock coordinator
        would be evicted despite polling diligently."""
        clock = ManualClock()
        cluster = FabricCluster(num_brokers=1, clock=clock)
        cluster.admin().create_topic("events", TopicConfig(num_partitions=2))
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="tick"))
        for _ in range(4):
            clock.advance(20.0)  # far beyond the 30s default session timeout
            consumer.poll()
        assert consumer.metrics.heartbeats == 4
        assert cluster.groups.members("tick") == [consumer.member_id]
        consumer.close()

    def test_polling_consumers_heartbeat_on_the_injected_clock(self):
        clock = ManualClock()
        cluster, c1, c2 = self.make_pair(clock)
        for _ in range(4):
            clock.advance(4.0)
            c1.poll()
            c2.poll()
        assert c1.metrics.heartbeats == 4 and c2.metrics.heartbeats == 4
        assert cluster.groups.members("live") == sorted(
            [c1.member_id, c2.member_id]
        )

    def test_silent_member_is_evicted_and_its_partitions_restick(self):
        clock = ManualClock()
        cluster, c1, c2 = self.make_pair(clock)
        survivor_before = set(c2.assignment())
        # c1 goes silent; c2 keeps polling past c1's session timeout.
        for _ in range(4):
            clock.advance(4.0)
            c2.poll()
        assert cluster.groups.members("live") == [c2.member_id]
        c2.poll()
        # Sticky re-assignment: the survivor kept everything it had and
        # absorbed the dead member's partitions.
        assert survivor_before <= set(c2.assignment())
        assert sorted(c2.assignment()) == cluster.partitions_for("events")
        # The zombie's stale-generation commit is fenced...
        with pytest.raises(CommitFailedError):
            c1.commit()
        # ...but its next poll rejoins it as a fresh member.
        c1.poll()
        c2.poll()
        c1.poll()
        assert len(cluster.groups.members("live")) == 2
        a1, a2 = set(c1.assignment()), set(c2.assignment())
        assert a1.isdisjoint(a2)
        assert a1 | a2 == set(cluster.partitions_for("events"))
