"""Tests for topics and topic configuration."""

import pytest

from repro.fabric.errors import InvalidConfigError, UnknownPartitionError
from repro.fabric.topic import DEFAULT_RETENTION_SECONDS, Topic, TopicConfig


class TestTopicConfig:
    def test_defaults_match_paper(self):
        config = TopicConfig()
        assert config.retention_seconds == DEFAULT_RETENTION_SECONDS == 7 * 24 * 3600
        assert config.replication_factor == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_partitions": 0},
            {"replication_factor": 0},
            {"cleanup_policy": "vacuum"},
            {"min_insync_replicas": 0},
            {"min_insync_replicas": 3, "replication_factor": 2},
            {"retention_seconds": -1},
            {"retention_bytes": -5},
            {"max_message_bytes": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(InvalidConfigError):
            TopicConfig(**kwargs).validate()

    def test_with_updates_returns_new_validated_config(self):
        config = TopicConfig(num_partitions=2)
        updated = config.with_updates(num_partitions=4)
        assert updated.num_partitions == 4
        assert config.num_partitions == 2
        with pytest.raises(InvalidConfigError):
            config.with_updates(num_partitions=-1)

    def test_dict_round_trip(self):
        config = TopicConfig(num_partitions=3, cleanup_policy="compact",
                             retention_bytes=1024)
        assert TopicConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = TopicConfig.from_dict({"num_partitions": 2, "bogus": True})
        assert config.num_partitions == 2


class TestTopic:
    def test_creates_configured_partition_count(self):
        topic = Topic("instrument-data", TopicConfig(num_partitions=4))
        assert topic.num_partitions == 4
        assert set(topic.partitions()) == {0, 1, 2, 3}

    def test_unknown_partition_raises(self):
        topic = Topic("t", TopicConfig(num_partitions=1))
        with pytest.raises(UnknownPartitionError):
            topic.partition(5)

    def test_add_partitions_grows_but_never_shrinks(self):
        topic = Topic("t", TopicConfig(num_partitions=2))
        topic.add_partitions(4)
        assert topic.num_partitions == 4
        with pytest.raises(InvalidConfigError):
            topic.add_partitions(1)

    def test_update_config_handles_partition_growth(self):
        topic = Topic("t", TopicConfig(num_partitions=2))
        topic.update_config(num_partitions=6, retention_seconds=60.0)
        assert topic.num_partitions == 6
        assert topic.config.retention_seconds == 60.0

    def test_describe_reports_offsets_and_counts(self):
        from repro.fabric.record import EventRecord

        topic = Topic("t", TopicConfig(num_partitions=2))
        topic.partition(0).append(EventRecord(value=1))
        topic.partition(0).append(EventRecord(value=2))
        topic.partition(1).append(EventRecord(value=3))
        info = topic.describe()
        assert info["end_offsets"] == {0: 2, 1: 1}
        assert info["total_records"] == 3
        assert topic.total_appended() == 3
