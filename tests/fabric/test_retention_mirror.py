"""Tests for retention/compaction policies and MirrorMaker replication."""

import pytest

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import UnknownTopicError
from repro.fabric.mirrormaker import MirrorMaker
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord
from repro.fabric.retention import (
    RetentionEnforcer,
    compact,
    enforce_size_retention,
    enforce_time_retention,
)
from repro.fabric.topic import Topic, TopicConfig


class TestTimeRetention:
    def test_old_records_removed_new_records_kept(self):
        log = PartitionLog("t", 0)
        for i in range(5):
            log.append(EventRecord(value=i), append_time=100.0 + i)
        removed = enforce_time_retention(log, retention_seconds=2.5, now=105.0)
        assert removed == 3
        assert [r.value for r in log.read_all()] == [3, 4]

    def test_everything_expired(self):
        log = PartitionLog("t", 0)
        for i in range(3):
            log.append(EventRecord(value=i), append_time=0.0)
        assert enforce_time_retention(log, retention_seconds=1.0, now=1000.0) == 3
        assert len(log) == 0
        assert log.log_end_offset == 3  # offsets never reset

    def test_nothing_expired(self):
        log = PartitionLog("t", 0)
        log.append(EventRecord(value=1), append_time=99.0)
        assert enforce_time_retention(log, retention_seconds=10.0, now=100.0) == 0


class TestSizeRetention:
    def test_oldest_records_removed_until_under_limit(self):
        log = PartitionLog("t", 0)
        for i in range(10):
            log.append(EventRecord(value=b"x" * 76))  # 100 B each
        removed = enforce_size_retention(log, retention_bytes=350)
        assert removed == 7
        assert len(log) == 3

    def test_under_limit_untouched(self):
        log = PartitionLog("t", 0)
        log.append(EventRecord(value=b"x" * 10))
        assert enforce_size_retention(log, retention_bytes=10_000) == 0


class TestCompaction:
    def test_keeps_only_latest_record_per_key(self):
        log = PartitionLog("t", 0)
        for i in range(6):
            log.append(EventRecord(value=i, key=f"k{i % 2}"))
        removed = compact(log)
        assert removed == 4
        remaining = {r.key: r.value for r in log.read_all()}
        assert remaining == {"k0": 4, "k1": 5}

    def test_unkeyed_records_survive_compaction(self):
        log = PartitionLog("t", 0)
        log.append(EventRecord(value="a"))
        log.append(EventRecord(value="b", key="k"))
        log.append(EventRecord(value="c", key="k"))
        compact(log)
        assert [r.value for r in log.read_all()] == ["a", "c"]

    def test_enforcer_dispatches_on_cleanup_policy(self):
        topic = Topic("t", TopicConfig(cleanup_policy="compact"))
        log = topic.partition(0)
        for i in range(4):
            log.append(EventRecord(value=i, key="same"))
        removed = RetentionEnforcer().enforce(topic)
        assert removed[0] == 3

    def test_enforcer_applies_time_and_size_policies(self):
        topic = Topic(
            "t", TopicConfig(retention_seconds=1.0, retention_bytes=150)
        )
        log = topic.partition(0)
        for i in range(5):
            log.append(EventRecord(value=b"x" * 76), append_time=0.0)
        enforcer = RetentionEnforcer(now_fn=lambda: 1000.0)
        assert enforcer.enforce(topic)[0] == 5


class TestMirrorMaker:
    def make_clusters(self):
        source = FabricCluster(num_brokers=2, name="us-east-1")
        destination = FabricCluster(num_brokers=2, name="us-west-2")
        source.admin().create_topic("telemetry", TopicConfig(num_partitions=2))
        return source, destination

    def test_sync_copies_records_and_creates_topic(self):
        source, destination = self.make_clusters()
        for i in range(10):
            source.append("telemetry", i % 2, EventRecord(value=i))
        mirror = MirrorMaker(source, destination, topic_prefix="east.")
        stats = mirror.sync_topic("telemetry")
        assert stats.records_mirrored == 10
        assert destination.has_topic("east.telemetry")
        assert sum(destination.end_offsets("east.telemetry").values()) == 10

    def test_sync_is_incremental(self):
        source, destination = self.make_clusters()
        mirror = MirrorMaker(source, destination)
        source.append("telemetry", 0, EventRecord(value="a"))
        assert mirror.sync_topic("telemetry").records_mirrored == 1
        assert mirror.sync_topic("telemetry").records_mirrored == 0
        source.append("telemetry", 0, EventRecord(value="b"))
        assert mirror.sync_topic("telemetry").records_mirrored == 1

    def test_mirrored_records_carry_provenance_headers(self):
        source, destination = self.make_clusters()
        source.append("telemetry", 0, EventRecord(value="x"))
        MirrorMaker(source, destination).sync_topic("telemetry")
        record = destination.fetch("telemetry", 0, 0)[0]
        assert record.record.headers["mirror.source.cluster"] == "us-east-1"
        assert record.record.headers["mirror.source.offset"] == "0"

    def test_replication_lag_reports_pending_records(self):
        source, destination = self.make_clusters()
        mirror = MirrorMaker(source, destination)
        for i in range(4):
            source.append("telemetry", 0, EventRecord(value=i))
        assert mirror.replication_lag("telemetry") == 4
        mirror.sync_topic("telemetry")
        assert mirror.replication_lag("telemetry") == 0

    def test_unknown_source_topic_raises(self):
        source, destination = self.make_clusters()
        with pytest.raises(UnknownTopicError):
            MirrorMaker(source, destination).sync_topic("missing")

    def test_sync_all_topics(self):
        source, destination = self.make_clusters()
        source.admin().create_topic("health")
        source.append("health", 0, EventRecord(value="ok"))
        stats = MirrorMaker(source, destination).sync()
        assert set(stats) == {"telemetry", "health"}
