"""Tests for the batched produce/consume data plane.

Covers the cluster-level ``append_batch`` path (equivalence with
sequential ``append`` under every acks mode), the producer's sealed-batch
buffering (no displaced batch is ever dropped), linger-driven auto-flush,
and round-robin poll fairness on the consumer side.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import (
    ConsumerConfig,
    FabricCluster,
    FabricConsumer,
    FabricProducer,
    ProducerConfig,
    TopicConfig,
)
from repro.fabric.errors import NotLeaderError, RecordTooLargeError
from repro.fabric.record import EventRecord


@pytest.fixture
def cluster():
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic("events", TopicConfig(num_partitions=4, replication_factor=2))
    return cluster


# --------------------------------------------------------------------------- #
# Cluster append_batch
# --------------------------------------------------------------------------- #
class TestClusterAppendBatch:
    def test_batch_returns_contiguous_offsets(self, cluster):
        records = [EventRecord(value=i) for i in range(10)]
        metadata = cluster.append_batch("events", 0, records)
        assert [md.offset for md in metadata] == list(range(10))
        assert all(md.partition == 0 for md in metadata)

    def test_empty_batch_is_a_noop(self, cluster):
        assert cluster.append_batch("events", 0, []) == []
        assert cluster.end_offsets("events")[0] == 0

    def test_oversize_record_rejects_whole_batch(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic(
            "small", TopicConfig(num_partitions=1, replication_factor=1,
                                 max_message_bytes=128)
        )
        records = [EventRecord(value="ok"), EventRecord(value=b"x" * 500)]
        with pytest.raises(RecordTooLargeError):
            cluster.append_batch("small", 0, records)
        assert cluster.end_offsets("small")[0] == 0

    def test_batch_replicates_to_followers(self, cluster):
        records = [EventRecord(value=i) for i in range(7)]
        cluster.append_batch("events", 1, records, acks="all")
        assignment = cluster.replication.assignment("events", 1)
        for broker_id in assignment.replicas:
            log = cluster.brokers[broker_id].replica("events", 1)
            assert log.log_end_offset == 7
            assert [s.value for s in log.read_all()] == list(range(7))

    def test_batch_mirrors_into_canonical_topic_view(self, cluster):
        cluster.append_batch("events", 2, [EventRecord(value=i) for i in range(5)])
        assert cluster.topic("events").partition(2).log_end_offset == 5

    def test_persistence_sink_sees_every_record_once(self):
        cluster = FabricCluster(num_brokers=1)
        cluster.admin().create_topic(
            "durable", TopicConfig(num_partitions=1, replication_factor=1,
                                   persist_to_store=True)
        )
        seen = []
        cluster.admin().add_persistence_sink(lambda t, p, stored: seen.append(stored.offset))
        cluster.append_batch("durable", 0, [EventRecord(value=i) for i in range(6)])
        assert seen == list(range(6))


values = st.one_of(st.integers(), st.text(max_size=20), st.binary(max_size=64))


@given(
    payloads=st.lists(values, min_size=1, max_size=30),
    acks=st.sampled_from([0, 1, "all"]),
)
@settings(max_examples=25, deadline=None)
def test_append_batch_equivalent_to_sequential_append(payloads, acks):
    """One batched append and N sequential appends must leave identical
    offsets and replica state on every broker, under every acks mode."""
    def build():
        cluster = FabricCluster(num_brokers=3)
        cluster.admin().create_topic(
            "t", TopicConfig(num_partitions=1, replication_factor=3)
        )
        return cluster

    sequential, batched = build(), build()
    records = [EventRecord(value=v) for v in payloads]
    md_seq = [sequential.append("t", 0, r, acks=acks) for r in records]
    md_batch = batched.append_batch("t", 0, records, acks=acks)
    assert [m.offset for m in md_seq] == [m.offset for m in md_batch]
    assert [m.serialized_size for m in md_seq] == [m.serialized_size for m in md_batch]
    for broker_id in range(3):
        log_seq = sequential.brokers[broker_id].replica("t", 0)
        log_batch = batched.brokers[broker_id].replica("t", 0)
        assert log_seq.log_end_offset == log_batch.log_end_offset
        assert [(s.offset, s.value) for s in log_seq.read_all()] == [
            (s.offset, s.value) for s in log_batch.read_all()
        ]


# --------------------------------------------------------------------------- #
# Producer buffering: exactly-once from buffer()/flush()
# --------------------------------------------------------------------------- #
class TestProducerBatching:
    def test_displaced_full_batches_are_not_dropped(self, cluster):
        """Regression: buffering more than batch_max_bytes used to silently
        drop each full batch displaced by its successor."""
        producer = FabricProducer(
            cluster,
            ProducerConfig(batch_max_bytes=256, buffer_memory_bytes=1 << 20),
        )
        n = 200
        for i in range(n):
            producer.buffer("events", {"i": i}, partition=0)
        metadata = producer.flush()
        assert len(metadata) == n
        delivered = cluster.fetch("events", 0, 0, max_records=10 * n)
        values = sorted(r.value["i"] for r in delivered)
        assert values == list(range(n))  # every event exactly once

    def test_flush_sends_whole_batches(self, cluster):
        producer = FabricProducer(cluster)
        for i in range(50):
            producer.buffer("events", {"i": i}, partition=3)
        producer.flush()
        assert producer.metrics.records_sent == 50
        assert producer.metrics.batches_sent == 1

    def test_flush_failure_rebuffers_undelivered_batches(self, cluster):
        producer = FabricProducer(
            cluster, ProducerConfig(retries=0), sleep_fn=lambda s: None
        )
        for i in range(10):
            producer.buffer("events", {"i": i}, partition=0)
        real_append_batch = cluster.append_batch
        cluster.append_batch = lambda *a, **k: (_ for _ in ()).throw(
            NotLeaderError("transient")
        )
        with pytest.raises(NotLeaderError):
            producer.flush()
        assert producer.buffered_bytes > 0  # nothing was lost
        # Re-buffered records are still pending, not failed.
        assert producer.metrics.records_failed == 0
        cluster.append_batch = real_append_batch
        metadata = producer.flush()
        assert len(metadata) == 10
        assert producer.metrics.records_sent == 10

    def test_batch_retry_then_success(self, cluster):
        attempts = {"n": 0}
        real_append_batch = cluster.append_batch

        def flaky(*args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise NotLeaderError("transient leadership change")
            return real_append_batch(*args, **kwargs)

        cluster.append_batch = flaky  # type: ignore[assignment]
        producer = FabricProducer(
            cluster, ProducerConfig(retries=3, retry_backoff_seconds=0),
            sleep_fn=lambda s: None,
        )
        metadata = producer.send_batch("events", list(range(5)), partition=0)
        assert [m.offset for m in metadata] == list(range(5))
        assert producer.metrics.retries == 2

    def test_send_batch_preserves_input_order_across_partitions(self, cluster):
        producer = FabricProducer(cluster)
        metadata = producer.send_batch("events", list(range(12)))
        assert len(metadata) == 12
        # Unkeyed events round-robin over all four partitions.
        assert {m.partition for m in metadata} == {0, 1, 2, 3}
        consumer = FabricConsumer(cluster, ["events"], ConsumerConfig(group_id="rr"))
        assert sorted(r.value for r in consumer.poll_flat()) == list(range(12))

    def test_linger_triggers_auto_flush(self, cluster):
        producer = FabricProducer(cluster, ProducerConfig(linger_seconds=1e-9))
        producer.buffer("events", "lingered", partition=0)
        # The oldest batch is already older than the (tiny) linger, so the
        # buffer call itself flushed it.
        assert producer.buffered_bytes == 0
        assert [r.value for r in cluster.fetch("events", 0, 0)] == ["lingered"]

    def test_zero_linger_keeps_manual_flush_semantics(self, cluster):
        producer = FabricProducer(cluster)
        producer.buffer("events", "held", partition=0)
        assert producer.buffered_bytes > 0
        assert cluster.end_offsets("events")[0] == 0


# --------------------------------------------------------------------------- #
# Concurrency and metadata refresh
# --------------------------------------------------------------------------- #
class TestConcurrentProducers:
    def test_canonical_mirror_survives_concurrent_batches(self, cluster):
        """Concurrent producers appending batches to one partition must
        leave the canonical topic view complete (the mirror is locked
        per partition, so no batch can be skipped by a later one)."""
        import threading

        def produce(worker):
            producer = FabricProducer(cluster)
            for i in range(20):
                producer.buffer("events", {"w": worker, "i": i}, partition=0)
                if i % 5 == 4:
                    producer.flush()
            producer.flush()

        threads = [threading.Thread(target=produce, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        canonical = cluster.topic("events").partition(0)
        leader_end = cluster.end_offsets("events")[0]
        assert leader_end == 8 * 20
        assert canonical.log_end_offset == leader_end
        assert len(canonical.read_all()) == leader_end

    def test_keyed_records_see_partition_growth_after_metadata_age(self, cluster):
        producer = FabricProducer(
            cluster, ProducerConfig(metadata_max_age_seconds=0.0)
        )
        producer.send("events", "warm")
        cluster.admin().set_partitions("events", 8)
        # With an expired metadata cache, unkeyed round-robin covers the
        # grown partition set.
        partitions = {producer.send("events", i).partition for i in range(16)}
        assert partitions == set(range(8))


# --------------------------------------------------------------------------- #
# Consumer round-robin fairness
# --------------------------------------------------------------------------- #
class TestPollFairness:
    def test_hot_partition_cannot_starve_others(self, cluster):
        producer = FabricProducer(cluster)
        producer.send_batch("events", list(range(200)), partition=0)
        for partition in (1, 2, 3):
            producer.send_batch("events", list(range(5)), partition=partition)
        consumer = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="fair", enable_auto_commit=False,
                           max_poll_records=10),
        )
        seen_partitions = set()
        for _ in range(len(consumer.assignment())):
            for (topic, partition), records in consumer.poll().items():
                if records:
                    seen_partitions.add(partition)
        # Within one cursor revolution every partition has been served,
        # despite partition 0 holding 20 polls' worth of backlog.
        assert seen_partitions == {0, 1, 2, 3}

    def test_drains_within_bounded_polls(self, cluster):
        producer = FabricProducer(cluster)
        for partition in range(4):
            producer.send_batch("events", list(range(30)), partition=partition)
        consumer = FabricConsumer(
            cluster, ["events"],
            ConsumerConfig(group_id="drain", enable_auto_commit=False,
                           max_poll_records=10),
        )
        total, polls = 0, 0
        while consumer.lag() > 0:
            total += len(consumer.poll_flat())
            polls += 1
            assert polls <= 4 * 30  # hard bound: no livelock, no starvation
        assert total == 120
        assert polls <= 12 + 4  # 120 records / 10 per poll, plus slack
