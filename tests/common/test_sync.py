"""fabric-san runtime half: the instrumented-lock sanitizer.

The deliberate AB/BA fixture here is the deadlock the sanitizer exists
to catch: both orders are exercised on one thread, so detection must be
deterministic (no interleaving luck required) and the raised error must
carry the acquisition stacks of *both* conflicting orderings.
"""

import threading

import pytest

from repro.common import sync
from repro.common.sync import (
    LockOrderInversion,
    SanitizedLock,
    SanitizedRLock,
    blocking_region,
    blocking_reports,
    create_lock,
    create_rlock,
    held_locks,
    note_blocking,
)


@pytest.fixture(autouse=True)
def _clean_state():
    # The sanitized classes are used directly (regardless of the global
    # switch), and their order graph is process-global.
    sync.reset_sanitizer_state()
    yield
    sync.reset_sanitizer_state()


# --------------------------------------------------------------------- #
# Lock-order inversion detection
# --------------------------------------------------------------------- #
class TestInversionDetection:
    def test_ab_ba_inversion_detected(self):
        a = SanitizedLock("lock-A")
        b = SanitizedLock("lock-B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderInversion):
                with a:
                    pass

    def test_error_carries_both_acquisition_stacks(self):
        a = SanitizedLock("alpha")
        b = SanitizedLock("beta")

        def establish_ab():
            with a:
                with b:
                    pass

        establish_ab()
        with b:
            with pytest.raises(LockOrderInversion) as excinfo:
                a.acquire()
        message = str(excinfo.value)
        # Both lock names, both orderings, and both stacks must appear.
        assert "alpha" in message and "beta" in message
        assert "current acquisition" in message
        assert "previously recorded acquisition" in message
        # The recorded (first) ordering's stack points at the code that
        # established A-before-B.
        assert "establish_ab" in message

    def test_detection_is_pre_block(self):
        """The inversion raises before acquire blocks: no real deadlock
        (nor second thread) is needed, and the lock stays free."""
        a = SanitizedLock("pre-A")
        b = SanitizedLock("pre-B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderInversion):
                with a:
                    pass
        # ``a`` was never actually acquired by the failing attempt.
        assert a.acquire(blocking=False)
        a.release()

    def test_transitive_cycle_detected(self):
        a, b, c = (SanitizedLock(n) for n in ("t-A", "t-B", "t-C"))
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        # A -> B -> C is on record; C -> A closes the cycle.
        with c:
            with pytest.raises(LockOrderInversion):
                with a:
                    pass

    def test_consistent_order_never_raises(self):
        a = SanitizedLock("ok-A")
        b = SanitizedLock("ok-B")
        errors = []

        def worker():
            try:
                for _ in range(50):
                    with a:
                        with b:
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_reset_clears_recorded_orders(self):
        a = SanitizedLock("r-A")
        b = SanitizedLock("r-B")
        with a:
            with b:
                pass
        sync.reset_sanitizer_state()
        with b:
            with a:  # no longer an inversion: the AB edge is gone
                pass


class TestSanitizedRLock:
    def test_reentrant_acquire_is_not_an_ordering_event(self):
        lock = SanitizedRLock("re-entrant")
        with lock:
            with lock:
                with lock:
                    assert lock.locked()
        assert not lock.locked()
        assert held_locks() == ()

    def test_inversion_detected_between_rlocks(self):
        a = SanitizedRLock("rl-A")
        b = SanitizedRLock("rl-B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderInversion):
                with a:
                    pass

    def test_foreign_thread_release_rejected(self):
        lock = SanitizedRLock("owned")
        lock.acquire()
        caught = []

        def foreign():
            try:
                lock.release()
            except RuntimeError as exc:
                caught.append(exc)

        t = threading.Thread(target=foreign)
        t.start()
        t.join()
        lock.release()
        assert len(caught) == 1

    def test_held_locks_reports_innermost_last(self):
        a = SanitizedRLock("outer")
        b = SanitizedLock("inner")
        with a:
            with b:
                assert held_locks() == ("outer", "inner")
        assert held_locks() == ()


# --------------------------------------------------------------------- #
# Blocking-while-locked observation
# --------------------------------------------------------------------- #
class TestBlockingReports:
    def test_blocking_under_lock_is_reported(self):
        lock = SanitizedLock("io-lock")
        with lock:
            note_blocking("codec.compress")
        reports = blocking_reports()
        assert len(reports) == 1
        assert reports[0].description == "codec.compress"
        assert reports[0].held == ("io-lock",)
        assert "test_sync" in reports[0].stack

    def test_blocking_without_lock_is_free(self):
        note_blocking("fs.read")
        assert blocking_reports() == []

    def test_blocking_region_context_manager(self):
        lock = SanitizedLock("region-lock")
        with lock:
            with blocking_region("json.dumps"):
                pass
        assert [r.description for r in blocking_reports()] == ["json.dumps"]


# --------------------------------------------------------------------- #
# Production no-op mode
# --------------------------------------------------------------------- #
class TestFactories:
    def test_disabled_factories_return_bare_primitives(self):
        """Production pays nothing: no wrapper object at all.

        This is the invariant behind keeping the storage/compression
        benchmark floors intact with the fabric migrated onto the
        factories.
        """
        before = sync.sanitizer_enabled()
        sync.enable_sanitizer(False)
        try:
            assert type(create_lock("x")) is type(threading.Lock())
            assert type(create_rlock("x")) is type(threading.RLock())
        finally:
            sync.enable_sanitizer(before)

    def test_enabled_factories_return_instrumented_wrappers(self):
        before = sync.sanitizer_enabled()
        sync.enable_sanitizer(True)
        try:
            assert isinstance(create_lock("a"), SanitizedLock)
            assert isinstance(create_rlock("b"), SanitizedRLock)
        finally:
            sync.enable_sanitizer(before)

    def test_default_name_is_creation_site(self):
        lock = SanitizedLock()
        assert "test_sync.py" in lock.name

    def test_fabric_locks_are_instrumented_under_sanitize(self):
        """End to end: a cluster built with the sanitizer on uses
        instrumented locks everywhere the factories were wired in."""
        from repro.fabric.cluster import FabricCluster

        before = sync.sanitizer_enabled()
        sync.enable_sanitizer(True)
        try:
            cluster = FabricCluster(num_brokers=1)
            assert isinstance(cluster._lock, SanitizedRLock)
            broker = cluster.brokers[0]
            assert isinstance(broker._lock, SanitizedRLock)
            assert isinstance(cluster.offsets._lock, SanitizedRLock)
            assert isinstance(cluster.groups._lock, SanitizedRLock)
        finally:
            sync.enable_sanitizer(before)
