"""RetryPolicy: backoff arithmetic, determinism, deadline, retriability.

The policy is the one retry loop shared by producer delivery, replica
recovery and the gateway long-poll (PR 10), so its contract is pinned
here once rather than re-tested per adopter.
"""

import pytest

from repro.common.clock import ManualClock
from repro.common.retry import RetryPolicy, default_retriable


class Flaky:
    """Fails ``failures`` times with ``exc_factory()``, then returns 42."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return 42


class RetriableError(Exception):
    retriable = True


class FatalError(Exception):
    retriable = False


class TestPolicyValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)

    def test_frozen_value_object(self):
        policy = RetryPolicy()
        with pytest.raises(Exception):
            policy.max_attempts = 9


class TestBackoff:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, max_backoff=0.5)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)
        assert policy.backoff_for(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_for(10) == pytest.approx(0.5)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_for(0)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(base_backoff=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(base_backoff=0.1, jitter=0.5, seed=7)
        c = RetryPolicy(base_backoff=0.1, jitter=0.5, seed=8)
        series_a = [a.backoff_for(n) for n in range(1, 6)]
        series_b = [b.backoff_for(n) for n in range(1, 6)]
        series_c = [c.backoff_for(n) for n in range(1, 6)]
        assert series_a == series_b
        assert series_a != series_c

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.backoff_for(attempt)
            assert 0.1 <= delay < 0.1 * 1.25


class TestCall:
    def test_succeeds_after_transient_failures(self):
        clock = ManualClock()
        fn = Flaky(2, RetriableError)
        policy = RetryPolicy(max_attempts=4, base_backoff=0.1)
        assert policy.call(fn, clock=clock) == 42
        assert fn.calls == 3
        # Backoffs advanced the manual clock: 0.1 + 0.2.
        assert clock.now() == pytest.approx(0.3)

    def test_non_retriable_raises_immediately(self):
        fn = Flaky(5, FatalError)
        with pytest.raises(FatalError):
            RetryPolicy(max_attempts=4).call(fn, clock=ManualClock())
        assert fn.calls == 1

    def test_exhaustion_reraises_last_error(self):
        fn = Flaky(99, RetriableError)
        with pytest.raises(RetriableError):
            RetryPolicy(max_attempts=3, base_backoff=0.01).call(
                fn, clock=ManualClock()
            )
        assert fn.calls == 3

    def test_deadline_clamps_and_stops(self):
        clock = ManualClock()
        fn = Flaky(99, RetriableError)
        policy = RetryPolicy(
            max_attempts=50, base_backoff=1.0, multiplier=1.0, deadline=2.5
        )
        with pytest.raises(RetriableError):
            policy.call(fn, clock=clock)
        # Sleeps 1.0, 1.0, then the 0.5 remainder; the next failure finds
        # the budget exhausted and re-raises instead of sleeping on.
        assert clock.now() == pytest.approx(2.5)
        assert fn.calls == 4

    def test_on_retry_observes_each_backoff(self):
        seen = []
        fn = Flaky(2, RetriableError)
        RetryPolicy(max_attempts=4, base_backoff=0.1).call(
            fn,
            clock=ManualClock(),
            on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
        )
        assert [a for a, _ in seen] == [1, 2]
        assert seen[0][1] == pytest.approx(0.1)
        assert seen[1][1] == pytest.approx(0.2)

    def test_custom_sleep_receives_delays(self):
        slept = []
        fn = Flaky(1, RetriableError)
        RetryPolicy(max_attempts=2, base_backoff=0.05).call(
            fn, clock=ManualClock(), sleep=slept.append
        )
        assert slept == [pytest.approx(0.05)]

    def test_custom_retriable_predicate(self):
        fn = Flaky(1, KeyError)  # KeyError has no .retriable
        policy = RetryPolicy(max_attempts=3, base_backoff=0.0)
        with pytest.raises(KeyError):
            policy.call(fn, clock=ManualClock())
        fn = Flaky(1, KeyError)
        assert (
            policy.call(
                fn,
                clock=ManualClock(),
                retriable=lambda exc: isinstance(exc, KeyError),
            )
            == 42
        )


class TestDefaultRetriable:
    def test_duck_typed_retriable_attribute(self):
        assert default_retriable(RetriableError())
        assert not default_retriable(FatalError())
        assert not default_retriable(ValueError("no attribute"))

    def test_matches_fabric_errors(self):
        from repro.fabric.errors import (
            BrokerUnavailableError,
            FencedLeaderError,
            UnknownTopicError,
        )

        assert default_retriable(BrokerUnavailableError("down"))
        assert default_retriable(FencedLeaderError("fenced"))
        assert not default_retriable(UnknownTopicError("missing"))
