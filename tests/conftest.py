"""Shared test configuration: Hypothesis example-budget profiles.

The push/PR CI matrix runs Hypothesis under its default budget.  The
nightly ``schedule:`` job exports ``HYPOTHESIS_PROFILE=soak`` to hammer
the property suites — most importantly the cooperative sticky-assignment
invariants — with a much larger ``max_examples`` budget.

Tests that pin ``max_examples`` in an explicit ``@settings`` keep their
own budget; the soak-oriented properties leave it unset so the selected
profile decides.
"""

import os

import pytest
from hypothesis import settings

from repro.common import sync

settings.register_profile("soak", max_examples=2500, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(autouse=True)
def _fresh_sanitizer_state():
    """Isolate the fabric-san lock-order graph between tests.

    Under ``REPRO_SANITIZE=1`` every fabric lock is instrumented and the
    order graph is global; without a reset, an AB edge recorded by one
    test could convict an unrelated BA order in another.
    """
    if sync.sanitizer_enabled():
        sync.reset_sanitizer_state()
    yield
