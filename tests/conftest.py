"""Shared test configuration: Hypothesis example-budget profiles.

The push/PR CI matrix runs Hypothesis under its default budget.  The
nightly ``schedule:`` job exports ``HYPOTHESIS_PROFILE=soak`` to hammer
the property suites — most importantly the cooperative sticky-assignment
invariants — with a much larger ``max_examples`` budget.

Tests that pin ``max_examples`` in an explicit ``@settings`` keep their
own budget; the soak-oriented properties leave it unset so the selected
profile decides.
"""

import os

from hypothesis import settings

settings.register_profile("soak", max_examples=2500, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
