"""Tests for the ZooKeeper-like coordination store."""

import pytest

from repro.coordination.zookeeper import (
    BadVersionError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    ZooKeeperEnsemble,
)


@pytest.fixture
def zk():
    return ZooKeeperEnsemble()


class TestCreateGet:
    def test_create_and_get(self, zk):
        zk.create("/topics", {"n": 1})
        assert zk.get("/topics") == {"n": 1}
        assert zk.exists("/topics")

    def test_create_requires_parent(self, zk):
        with pytest.raises(NoNodeError):
            zk.create("/a/b/c", 1)

    def test_make_parents(self, zk):
        zk.create("/a/b/c", 1, make_parents=True)
        assert zk.exists("/a/b")
        assert zk.get("/a/b/c") == 1

    def test_duplicate_create_rejected(self, zk):
        zk.create("/x")
        with pytest.raises(NodeExistsError):
            zk.create("/x")

    def test_relative_path_rejected(self, zk):
        with pytest.raises(ValueError):
            zk.create("topics")

    def test_trailing_slash_rejected(self, zk):
        with pytest.raises(ValueError):
            zk.get("/topics/")

    def test_sequential_nodes_get_increasing_suffixes(self, zk):
        zk.create("/queue")
        first = zk.create("/queue/task-", "a", sequential=True)
        second = zk.create("/queue/task-", "b", sequential=True)
        assert first < second
        assert zk.get(first) == "a"

    def test_ensure_path_idempotent(self, zk):
        zk.ensure_path("/octopus/topics")
        zk.ensure_path("/octopus/topics")
        assert zk.exists("/octopus/topics")


class TestSetVersioning:
    def test_set_bumps_version(self, zk):
        zk.create("/n", 1)
        assert zk.stat("/n").version == 0
        zk.set("/n", 2)
        assert zk.stat("/n").version == 1
        assert zk.get("/n") == 2

    def test_conditional_set_with_stale_version_fails(self, zk):
        zk.create("/n", 1)
        zk.set("/n", 2)
        with pytest.raises(BadVersionError):
            zk.set("/n", 3, expected_version=0)
        assert zk.get("/n") == 2

    def test_conditional_set_with_current_version_succeeds(self, zk):
        zk.create("/n", 1)
        version = zk.set("/n", 2, expected_version=0)
        assert version == 1

    def test_get_missing_node_raises(self, zk):
        with pytest.raises(NoNodeError):
            zk.get("/missing")


class TestDeleteChildren:
    def test_children_lists_direct_children_only(self, zk):
        zk.create("/t", make_parents=True)
        zk.create("/t/a")
        zk.create("/t/b")
        zk.create("/t/a/nested")
        assert zk.children("/t") == ["a", "b"]
        assert zk.children("/") == ["t"]

    def test_delete_with_children_requires_recursive(self, zk):
        zk.create("/t")
        zk.create("/t/a")
        with pytest.raises(NotEmptyError):
            zk.delete("/t")
        zk.delete("/t", recursive=True)
        assert not zk.exists("/t")
        assert not zk.exists("/t/a")

    def test_delete_missing_raises(self, zk):
        with pytest.raises(NoNodeError):
            zk.delete("/ghost")


class TestWatches:
    def test_data_watch_fires_on_change_and_delete(self, zk):
        events = []
        zk.create("/w", 0)
        zk.watch("/w", lambda event, path: events.append((event, path)))
        zk.set("/w", 1)
        zk.delete("/w")
        assert events == [("changed", "/w"), ("deleted", "/w")]

    def test_child_watch_fires_on_create_and_delete(self, zk):
        events = []
        zk.create("/parent")
        zk.watch_children("/parent", lambda event, path: events.append(event))
        zk.create("/parent/a")
        zk.delete("/parent/a")
        assert events == ["children_changed", "children_changed"]


class TestEphemeral:
    def test_close_session_removes_ephemeral_nodes(self, zk):
        zk.create("/members")
        zk.create("/members/broker-1", "alive", ephemeral_owner="session-1")
        zk.create("/members/broker-2", "alive", ephemeral_owner="session-2")
        removed = zk.close_session("session-1")
        assert removed == ["/members/broker-1"]
        assert zk.children("/members") == ["broker-2"]

    def test_stat_reports_ephemeral_owner(self, zk):
        zk.create("/e", ephemeral_owner="s")
        assert zk.stat("/e").ephemeral_owner == "s"

    def test_dump_snapshot(self, zk):
        zk.create("/a", 1)
        snapshot = zk.dump()
        assert snapshot["/a"] == 1
        assert "/" in snapshot
