"""Tests for the Octopus cluster metadata registry."""

import pytest

from repro.coordination.metadata import ClusterMetadataRegistry


@pytest.fixture
def registry():
    return ClusterMetadataRegistry()


class TestTopicOwnership:
    def test_register_and_describe_topic(self, registry):
        registry.register_topic("sdl-events", owner="alice@uchicago.edu",
                                config={"num_partitions": 2})
        assert registry.topic_exists("sdl-events")
        assert registry.topic_owner("sdl-events") == "alice@uchicago.edu"
        assert registry.topic_config("sdl-events") == {"num_partitions": 2}

    def test_register_is_idempotent_for_same_owner(self, registry):
        registry.register_topic("t", owner="alice")
        registry.register_topic("t", owner="alice")
        assert registry.topic_owner("t") == "alice"

    def test_register_rejects_foreign_takeover(self, registry):
        registry.register_topic("t", owner="alice")
        with pytest.raises(PermissionError):
            registry.register_topic("t", owner="bob")

    def test_owner_gets_full_acl(self, registry):
        registry.register_topic("t", owner="alice")
        assert registry.acl("t")["alice"] == ["DESCRIBE", "READ", "WRITE"]

    def test_unregister_topic(self, registry):
        registry.register_topic("t", owner="alice")
        registry.unregister_topic("t")
        assert not registry.topic_exists("t")
        registry.unregister_topic("t")  # idempotent

    def test_list_topics_and_topics_for_principal(self, registry):
        registry.register_topic("a", owner="alice")
        registry.register_topic("b", owner="bob")
        registry.grant("b", "alice", ["DESCRIBE"])
        assert registry.list_topics() == ["a", "b"]
        assert registry.topics_for_principal("alice") == ["a", "b"]
        assert registry.topics_for_principal("bob") == ["b"]

    def test_set_topic_config(self, registry):
        registry.register_topic("t", owner="alice")
        registry.set_topic_config("t", {"retention_seconds": 60})
        assert registry.topic_config("t") == {"retention_seconds": 60}


class TestAcl:
    def test_grant_and_revoke(self, registry):
        registry.register_topic("t", owner="alice")
        registry.grant("t", "bob", ["read", "describe"])
        assert registry.is_authorized("bob", "READ", "t")
        assert not registry.is_authorized("bob", "WRITE", "t")
        registry.revoke("t", "bob", ["READ"])
        assert not registry.is_authorized("bob", "READ", "t")
        assert registry.is_authorized("bob", "DESCRIBE", "t")
        registry.revoke("t", "bob")
        assert "bob" not in registry.acl("t")

    def test_unknown_topic_not_authorized(self, registry):
        assert not registry.is_authorized("alice", "READ", "nope")

    def test_none_principal_not_authorized(self, registry):
        registry.register_topic("t", owner="alice")
        assert not registry.is_authorized(None, "READ", "t")


class TestIdentityMapping:
    def test_map_and_lookup(self, registry):
        registry.map_identity("alice@uchicago.edu", "iam-user-1")
        assert registry.iam_principal_for("alice@uchicago.edu") == "iam-user-1"
        registry.map_identity("alice@uchicago.edu", "iam-user-2")
        assert registry.iam_principal_for("alice@uchicago.edu") == "iam-user-2"

    def test_unknown_identity_returns_none(self, registry):
        assert registry.iam_principal_for("ghost@nowhere") is None


class TestTriggerRegistry:
    def test_register_list_and_remove(self, registry):
        registry.register_trigger("tr-1", {"topic": "t", "function": "f"})
        registry.register_trigger("tr-2", {"topic": "u", "function": "g"})
        assert registry.list_triggers() == ["tr-1", "tr-2"]
        assert registry.trigger_spec("tr-1")["topic"] == "t"
        registry.unregister_trigger("tr-1")
        assert registry.list_triggers() == ["tr-2"]

    def test_register_trigger_update(self, registry):
        registry.register_trigger("tr", {"batch_size": 1})
        registry.register_trigger("tr", {"batch_size": 100})
        assert registry.trigger_spec("tr")["batch_size"] == 100
