"""fabric-san static half: the concurrency/clock lint.

Fixture snippets are linted in memory via :func:`lint_source`; the
baseline ratchet and the CLI are exercised against a tmp_path tree.
"""

import json
import textwrap

import pytest

from repro.analysis import lint
from repro.analysis.lint import (
    apply_baseline,
    lint_source,
    load_baseline,
    violation_counts,
    write_baseline,
)


def run(source, path="src/repro/fabric/example.py"):
    return lint_source(textwrap.dedent(source), path)


def codes(violations):
    return [v.rule for v in violations]


# --------------------------------------------------------------------- #
# RAW-CLOCK
# --------------------------------------------------------------------- #
class TestRawClock:
    def test_time_time_call_flagged(self):
        out = run("""
            import time

            def stamp():
                return time.time()
        """)
        assert codes(out) == ["RAW-CLOCK"]
        assert "time.time" in out[0].message

    def test_bare_reference_default_flagged(self):
        """``sleep_fn=time.sleep`` defaults bypass the Clock without a
        call expression anywhere — references are violations too."""
        out = run("""
            import time

            def poll(sleep_fn=time.sleep):
                sleep_fn(0.1)
        """)
        assert codes(out) == ["RAW-CLOCK"]

    def test_import_alias_resolved(self):
        out = run("""
            from time import time as wall

            def stamp():
                return wall()
        """)
        assert codes(out) == ["RAW-CLOCK"]

    def test_datetime_now_flagged(self):
        out = run("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert codes(out) == ["RAW-CLOCK"]

    def test_clock_module_exempt(self):
        out = run(
            """
            import time

            def now():
                return time.time()
            """,
            path="src/repro/common/clock.py",
        )
        assert out == []

    def test_perf_counter_allowed(self):
        out = run("""
            import time

            def measure():
                return time.perf_counter()
        """)
        assert out == []


# --------------------------------------------------------------------- #
# GUARDED-BY
# --------------------------------------------------------------------- #
GUARDED_CLASS = """
    from repro.common.sync import create_rlock


    class Store:
        def __init__(self):
            self._items = {{}}  #: guarded_by _lock
            self._lock = create_rlock("Store")

        {method}
"""


class TestGuardedBy:
    def test_unlocked_access_flagged(self):
        out = run(GUARDED_CLASS.format(method="""
        def size(self):
            return len(self._items)
        """))
        assert codes(out) == ["GUARDED-BY"]
        assert "_items" in out[0].message and "_lock" in out[0].message

    def test_locked_access_clean(self):
        out = run(GUARDED_CLASS.format(method="""
        def size(self):
            with self._lock:
                return len(self._items)
        """))
        assert out == []

    def test_locked_suffix_method_exempt(self):
        out = run(GUARDED_CLASS.format(method="""
        def size_locked(self):
            return len(self._items)
        """))
        assert out == []

    def test_access_after_with_body_flagged(self):
        """Lexical tracking: the lock is no longer held after the
        ``with`` body ends."""
        out = run(GUARDED_CLASS.format(method="""
        def drain(self):
            with self._lock:
                items = dict(self._items)
            self._items.clear()
            return items
        """))
        assert codes(out) == ["GUARDED-BY"]

    def test_wrong_lock_flagged(self):
        out = run("""
            from repro.common.sync import create_lock


            class Store:
                def __init__(self):
                    self._items = {}  #: guarded_by _lock
                    self._lock = create_lock("a")
                    self._flush_lock = create_lock("b")

                def size(self):
                    with self._flush_lock:
                        return len(self._items)
        """)
        assert codes(out) == ["GUARDED-BY"]

    def test_unannotated_attribute_ignored(self):
        out = run("""
            class Store:
                def __init__(self):
                    self._items = {}

                def size(self):
                    return len(self._items)
        """)
        assert out == []


# --------------------------------------------------------------------- #
# BLOCKING-UNDER-LOCK
# --------------------------------------------------------------------- #
class TestBlockingUnderLock:
    def test_json_dumps_under_lock_flagged(self):
        out = run("""
            import json


            class Store:
                def snapshot(self):
                    with self._lock:
                        return json.dumps(self._items)
        """)
        assert codes(out) == ["BLOCKING-UNDER-LOCK"]

    def test_compress_under_lock_flagged(self):
        out = run("""
            class Log:
                def seal(self, codec):
                    with self._lock:
                        return codec.compress(b"payload")
        """)
        assert codes(out) == ["BLOCKING-UNDER-LOCK"]

    def test_outside_lock_clean(self):
        out = run("""
            import json


            class Store:
                def snapshot(self):
                    with self._lock:
                        items = dict(self._items)
                    return json.dumps(items)
        """)
        assert out == []

    def test_nested_function_body_not_charged_to_lock(self):
        out = run("""
            import json


            class Store:
                def deferred(self):
                    with self._lock:
                        def emit(items):
                            return json.dumps(items)
                        return emit
        """)
        assert out == []

    def test_non_lock_with_not_treated_as_lock(self):
        out = run("""
            import json


            def save(path, items):
                with open(path, "w") as fh:
                    fh.write(json.dumps(items))
        """)
        assert codes(out) == []


# --------------------------------------------------------------------- #
# BARE-ACQUIRE / DEPRECATED-API
# --------------------------------------------------------------------- #
class TestBareAcquire:
    def test_manual_acquire_release_flagged(self):
        out = run("""
            class Store:
                def risky(self):
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
        """)
        assert codes(out) == ["BARE-ACQUIRE", "BARE-ACQUIRE"]

    def test_resource_pool_acquire_not_flagged(self):
        """Simulation-kernel resource ops (``kernel.acquire(workers)``)
        are not lock operations."""
        out = run("""
            def stage(kernel, workers):
                yield kernel.acquire(workers)
                yield kernel.release(workers)
        """)
        assert out == []


class TestDeprecatedApi:
    def test_flatlog_import_flagged(self):
        out = run("""
            from repro.fabric.flatlog import FlatPartitionLog
        """)
        assert codes(out) == ["DEPRECATED-API"]

    def test_replace_records_call_flagged(self):
        out = run("""
            def rewrite(log, kept):
                log.replace_records(kept)
        """)
        assert codes(out) == ["DEPRECATED-API"]
        assert "compact" in out[0].message


# --------------------------------------------------------------------- #
# Suppression
# --------------------------------------------------------------------- #
class TestSuppression:
    def test_same_line_ignore_suppresses(self):
        out = run("""
            import time

            def stamp():
                return time.time()  # rationale here.  lint: ignore[RAW-CLOCK]
        """)
        assert out == []

    def test_ignore_for_other_rule_does_not_suppress(self):
        out = run("""
            import time

            def stamp():
                return time.time()  # lint: ignore[BARE-ACQUIRE]
        """)
        assert codes(out) == ["RAW-CLOCK"]

    def test_multi_rule_ignore(self):
        out = run("""
            import time

            def stamp(lock):
                return lock.acquire(), time.time()  # lint: ignore[RAW-CLOCK, BARE-ACQUIRE]
        """)
        assert out == []


# --------------------------------------------------------------------- #
# Baseline ratchet
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_covered_violations_are_baselined(self):
        violations = run("""
            import time

            def a():
                return time.time()

            def b():
                return time.time()
        """)
        baseline = violation_counts(violations)
        fresh, stale = apply_baseline(violations, baseline)
        assert fresh == [] and stale == {}

    def test_new_violation_not_covered(self):
        one = run("""
            import time

            def a():
                return time.time()
        """)
        two = one + run("""
            import time

            def b():
                time.sleep(1)
        """)
        fresh, stale = apply_baseline(two, violation_counts(one))
        assert [v.rule for v in fresh] == ["RAW-CLOCK"]
        assert "time.sleep" in fresh[0].message
        assert stale == {}

    def test_fixed_debt_makes_baseline_stale(self):
        violations = run("""
            import time

            def a():
                return time.time()
        """)
        baseline = violation_counts(violations)
        fresh, stale = apply_baseline([], baseline)
        assert fresh == []
        assert stale == baseline

    def test_roundtrip(self, tmp_path):
        counts = {"src/x.py::RAW-CLOCK::msg": 2}
        path = tmp_path / "baseline.json"
        write_baseline(path, counts)
        assert load_baseline(path) == counts

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"key": -1}))
        with pytest.raises(ValueError):
            load_baseline(path)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
DIRTY = textwrap.dedent("""
    import time


    def stamp():
        return time.time()
""")

CLEAN = textwrap.dedent("""
    def stamp(clock):
        return clock.now()
""")


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(CLEAN)
        assert lint.main(["mod.py"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(DIRTY)
        assert lint.main(["mod.py"]) == 1
        out = capsys.readouterr().out
        assert "RAW-CLOCK" in out and "mod.py" in out

    def test_baselined_findings_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(DIRTY)
        assert lint.main(["mod.py", "--update-baseline"]) == 0
        assert lint.main(["mod.py"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_baseline_exit_one(self, tmp_path, capsys, monkeypatch):
        """The ratchet's teeth: fixing debt without shrinking the
        baseline fails the run."""
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(DIRTY)
        assert lint.main(["mod.py", "--update-baseline"]) == 0
        (tmp_path / "mod.py").write_text(CLEAN)
        assert lint.main(["mod.py"]) == 1
        assert "stale baseline" in capsys.readouterr().out

    def test_update_refuses_growth(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(CLEAN)
        (tmp_path / "extra.py").write_text(CLEAN)
        assert lint.main(["."]) == 0  # no baseline, no findings
        assert lint.main([".", "--update-baseline"]) == 0
        (tmp_path / "extra.py").write_text(DIRTY)
        assert lint.main([".", "--update-baseline"]) == 1
        assert "refusing to grow" in capsys.readouterr().err
        # ...unless growth is an explicit, reviewed decision.
        assert lint.main([".", "--update-baseline", "--allow-growth"]) == 0
        assert lint.main(["."]) == 0

    def test_no_baseline_flag_reports_everything(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(DIRTY)
        assert lint.main(["mod.py", "--update-baseline"]) == 0
        assert lint.main(["mod.py", "--no-baseline"]) == 1

    def test_missing_path_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert lint.main(["nope.txt"]) == 2

    def test_repo_tree_is_clean_against_committed_baseline(self, repo_root):
        """The acceptance gate CI runs: ``python -m repro.analysis.lint
        src/`` from the repo root must pass with the committed
        baseline."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "src"],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


@pytest.fixture
def repo_root():
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    if not (root / "src" / "repro").is_dir():  # pragma: no cover
        pytest.skip("repo layout not available")
    return root


class TestSwallowedError:
    def test_bare_pass_handler_flagged(self):
        violations = run(
            """
            def replicate():
                try:
                    push()
                except Exception:
                    pass
            """
        )
        assert "SWALLOWED-ERROR" in codes(violations)

    def test_continue_only_handler_flagged(self):
        violations = run(
            """
            def drain(items):
                for item in items:
                    try:
                        handle(item)
                    except ValueError:
                        continue
            """
        )
        assert "SWALLOWED-ERROR" in codes(violations)

    def test_message_names_the_caught_type(self):
        violations = run(
            """
            def replicate():
                try:
                    push()
                except (OSError, ValueError):
                    pass
            """
        )
        found = [v for v in violations if v.rule == "SWALLOWED-ERROR"]
        assert len(found) == 1
        assert "(OSError, ValueError)" in found[0].message

    def test_handler_that_acts_is_clean(self):
        violations = run(
            """
            def replicate():
                try:
                    push()
                except ValueError as exc:
                    log(exc)
            """
        )
        assert "SWALLOWED-ERROR" not in codes(violations)

    def test_reraise_is_clean(self):
        violations = run(
            """
            def replicate():
                try:
                    push()
                except ValueError:
                    raise
            """
        )
        assert "SWALLOWED-ERROR" not in codes(violations)

    def test_scope_limited_to_fabric_and_gateway(self):
        snippet = """
            def helper():
                try:
                    work()
                except Exception:
                    pass
            """
        flagged = lint_source(
            textwrap.dedent(snippet), "src/repro/gateway/helper.py"
        )
        unflagged = lint_source(
            textwrap.dedent(snippet), "src/repro/analysis/helper.py"
        )
        assert "SWALLOWED-ERROR" in codes(flagged)
        assert "SWALLOWED-ERROR" not in codes(unflagged)

    def test_inline_ignore_suppresses(self):
        violations = run(
            """
            def replicate():
                try:
                    push()
                except ValueError:  # lint: ignore[SWALLOWED-ERROR]
                    pass
            """
        )
        assert "SWALLOWED-ERROR" not in codes(violations)
