"""Tests for processing-pressure scaling and the trigger-scaling simulator."""

import pytest

from repro.faas.scaling import (
    ProcessingPressureScaler,
    ScalingPolicy,
    TriggerScalingSimulator,
)


class TestScalingPolicy:
    def test_defaults_valid(self):
        ScalingPolicy().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"evaluation_interval_seconds": 0},
            {"initial_concurrency": 0},
            {"max_concurrency": 1, "initial_concurrency": 3},
            {"scale_up_factor": 1.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScalingPolicy(**kwargs).validate()


class TestScaler:
    def test_zero_pending_scales_to_zero(self):
        scaler = ProcessingPressureScaler(partitions=16)
        assert scaler.next_concurrency(backlog=0, in_flight=0, current=8) == 0

    def test_large_backlog_scales_up_multiplicatively(self):
        scaler = ProcessingPressureScaler(ScalingPolicy(scale_up_factor=3.0), partitions=128)
        assert scaler.next_concurrency(backlog=5000, in_flight=3, current=3) == 9
        assert scaler.next_concurrency(backlog=5000, in_flight=9, current=9) == 27

    def test_concurrency_never_exceeds_partitions(self):
        scaler = ProcessingPressureScaler(ScalingPolicy(max_concurrency=128), partitions=8)
        assert scaler.concurrency_ceiling == 8
        assert scaler.next_concurrency(backlog=10_000, in_flight=0, current=8) == 8

    def test_concurrency_never_exceeds_policy_max(self):
        scaler = ProcessingPressureScaler(ScalingPolicy(max_concurrency=16), partitions=512)
        assert scaler.next_concurrency(backlog=10_000, in_flight=0, current=16) == 16

    def test_small_backlog_scales_down(self):
        scaler = ProcessingPressureScaler(partitions=128)
        new = scaler.next_concurrency(backlog=10, in_flight=50, current=128)
        assert new < 128
        assert new >= 1


class TestTriggerScalingSimulator:
    """Reproduces the shape of Figure 4 in the paper."""

    @pytest.fixture(scope="class")
    def figure4_samples(self):
        simulator = TriggerScalingSimulator(
            num_tasks=5000, task_duration_seconds=30.0, partitions=128, batch_size=1
        )
        return simulator, simulator.run()

    def test_scales_to_128_within_five_minutes(self, figure4_samples):
        simulator, samples = figure4_samples
        assert simulator.peak_concurrency(samples) == 128
        reached = simulator.time_to_reach(samples, 128)
        assert reached is not None and reached <= 300.0

    def test_workload_completes_in_paper_timeframe(self, figure4_samples):
        """Figure 4's x-axis runs to 1500 s; the backlog drains before that."""
        simulator, samples = figure4_samples
        assert 900.0 <= simulator.completion_time(samples) <= 1600.0
        assert samples[-1].queue_depth == 0
        assert samples[-1].completed == 5000

    def test_scales_down_before_completion(self, figure4_samples):
        simulator, samples = figure4_samples
        completion = simulator.completion_time(samples)
        tail = [s for s in samples if s.time_seconds >= completion - 90]
        assert any(s.concurrent_invocations < 128 for s in tail)

    def test_queue_depth_is_monotonically_decreasing_without_arrivals(self, figure4_samples):
        _, samples = figure4_samples
        depths = [s.queue_depth for s in samples]
        assert all(a >= b for a, b in zip(depths, depths[1:]))

    def test_fewer_partitions_bound_concurrency_and_stretch_completion(self):
        small = TriggerScalingSimulator(
            num_tasks=500, task_duration_seconds=30.0, partitions=8, batch_size=1
        )
        samples = small.run()
        assert small.peak_concurrency(samples) <= 8
        large = TriggerScalingSimulator(
            num_tasks=500, task_duration_seconds=30.0, partitions=64, batch_size=1
        )
        assert large.completion_time(large.run()) < small.completion_time(samples)

    def test_arrival_function_keeps_feeding_queue(self):
        simulator = TriggerScalingSimulator(
            num_tasks=0,
            task_duration_seconds=5.0,
            partitions=8,
            batch_size=1,
            arrival_fn=lambda t: 2 if t <= 60 else 0,
        )
        samples = simulator.run(max_seconds=400)
        assert samples[-1].completed == 120
        assert simulator.peak_concurrency(samples) > 1

    def test_larger_batches_complete_sooner(self):
        batch1 = TriggerScalingSimulator(
            num_tasks=1000, task_duration_seconds=10.0, partitions=16, batch_size=1
        )
        batch10 = TriggerScalingSimulator(
            num_tasks=1000, task_duration_seconds=10.0, partitions=16, batch_size=10
        )
        assert batch10.completion_time(batch10.run()) < batch1.completion_time(batch1.run())

    def test_cooperative_rebalance_cost_is_below_eager(self):
        """Every scale event rebalances the trigger's consumer group: the
        eager stop-the-world model stalls all in-flight invocations, the
        cooperative model only those whose partitions move — so end-to-end
        completion must order baseline <= cooperative <= eager."""
        kwargs = dict(
            num_tasks=1000, task_duration_seconds=30.0, partitions=128,
            rebalance_pause_seconds=15.0,
        )
        baseline = TriggerScalingSimulator(
            num_tasks=1000, task_duration_seconds=30.0, partitions=128
        ).run()
        cooperative = TriggerScalingSimulator(cooperative=True, **kwargs).run()
        eager = TriggerScalingSimulator(cooperative=False, **kwargs).run()
        t = TriggerScalingSimulator.completion_time
        assert t(baseline) <= t(cooperative) < t(eager)
        # All three still finish the same work.
        assert baseline[-1].completed == 1000
        assert cooperative[-1].completed == 1000
        assert eager[-1].completed == 1000
