"""Tests for the EventBridge-style pattern language."""

import pytest

from repro.faas.patterns import EventPattern, PatternError, matches_pattern


class TestLiteralMatching:
    def test_paper_listing1_pattern(self):
        """The exact pattern from Listing 1 of the paper."""
        pattern = {"value": {"event_type": ["created"]}}
        assert matches_pattern(pattern, {"value": {"event_type": "created"}})
        assert not matches_pattern(pattern, {"value": {"event_type": "modified"}})
        assert not matches_pattern(pattern, {"value": {}})
        assert not matches_pattern(pattern, {})

    def test_multiple_alternatives(self):
        pattern = {"value": {"event_type": ["created", "closed"]}}
        assert matches_pattern(pattern, {"value": {"event_type": "closed"}})
        assert not matches_pattern(pattern, {"value": {"event_type": "deleted"}})

    def test_empty_or_none_pattern_matches_everything(self):
        assert matches_pattern(None, {"anything": 1})
        assert matches_pattern({}, {"anything": 1})

    def test_top_level_literal(self):
        assert matches_pattern({"topic": ["fsmon"]}, {"topic": "fsmon", "other": 2})

    def test_numbers_and_none_literals(self):
        assert matches_pattern({"n": [3]}, {"n": 3})
        assert not matches_pattern({"n": [3]}, {"n": 4})
        assert matches_pattern({"x": [None]}, {"x": None})

    def test_event_array_values_match_any_element(self):
        pattern = {"tags": ["urgent"]}
        assert matches_pattern(pattern, {"tags": ["routine", "urgent"]})
        assert not matches_pattern(pattern, {"tags": ["routine"]})

    def test_json_string_pattern(self):
        assert matches_pattern('{"value": {"event_type": ["created"]}}',
                               {"value": {"event_type": "created"}})

    def test_invalid_json_string_raises(self):
        with pytest.raises(PatternError):
            matches_pattern("{not json", {})

    def test_non_object_pattern_raises(self):
        with pytest.raises(PatternError):
            matches_pattern(["a"], {})

    def test_scalar_pattern_value_raises(self):
        with pytest.raises(PatternError):
            matches_pattern({"a": "literal-not-in-list"}, {"a": "x"})


class TestContentFilters:
    def test_prefix_and_suffix(self):
        assert matches_pattern({"path": [{"prefix": "/data/"}]}, {"path": "/data/run1.h5"})
        assert not matches_pattern({"path": [{"prefix": "/data/"}]}, {"path": "/tmp/x"})
        assert matches_pattern({"path": [{"suffix": ".h5"}]}, {"path": "/data/run1.h5"})

    def test_numeric_ranges(self):
        pattern = {"power_watts": [{"numeric": [">", 100, "<=", 200]}]}
        assert matches_pattern(pattern, {"power_watts": 150})
        assert matches_pattern(pattern, {"power_watts": 200})
        assert not matches_pattern(pattern, {"power_watts": 100})
        assert not matches_pattern(pattern, {"power_watts": 201})
        assert not matches_pattern(pattern, {"power_watts": "hot"})
        assert not matches_pattern(pattern, {})

    def test_numeric_equality(self):
        assert matches_pattern({"n": [{"numeric": ["=", 5]}]}, {"n": 5})

    def test_numeric_bad_operator(self):
        with pytest.raises(PatternError):
            matches_pattern({"n": [{"numeric": ["~", 5]}]}, {"n": 5})

    def test_numeric_malformed_pairs(self):
        with pytest.raises(PatternError):
            matches_pattern({"n": [{"numeric": [">"]}]}, {"n": 5})

    def test_exists(self):
        assert matches_pattern({"error": [{"exists": True}]}, {"error": "boom"})
        assert not matches_pattern({"error": [{"exists": True}]}, {})
        assert matches_pattern({"error": [{"exists": False}]}, {})
        assert not matches_pattern({"error": [{"exists": False}]}, {"error": None})

    def test_anything_but(self):
        pattern = {"status": [{"anything-but": ["ok", "skipped"]}]}
        assert matches_pattern(pattern, {"status": "failed"})
        assert not matches_pattern(pattern, {"status": "ok"})
        assert not matches_pattern(pattern, {})

    def test_equals_ignore_case(self):
        assert matches_pattern({"site": [{"equals-ignore-case": "ANL"}]}, {"site": "anl"})

    def test_unknown_filter_raises(self):
        with pytest.raises(PatternError):
            matches_pattern({"a": [{"regex": ".*"}]}, {"a": "x"})

    def test_filter_with_multiple_keys_raises(self):
        with pytest.raises(PatternError):
            matches_pattern({"a": [{"prefix": "x", "suffix": "y"}]}, {"a": "x"})

    def test_literal_and_filter_alternatives_combine(self):
        pattern = {"event_type": ["created", {"prefix": "mod"}]}
        assert matches_pattern(pattern, {"event_type": "created"})
        assert matches_pattern(pattern, {"event_type": "modified"})
        assert not matches_pattern(pattern, {"event_type": "deleted"})


class TestNestedPatterns:
    def test_deeply_nested(self):
        pattern = {"value": {"metadata": {"facility": ["aps", "als"]}}}
        event = {"value": {"metadata": {"facility": "aps"}, "other": 1}}
        assert matches_pattern(pattern, event)
        assert not matches_pattern(pattern, {"value": {"metadata": {"facility": "nsls"}}})

    def test_missing_subtree_fails_unless_exists_false(self):
        assert not matches_pattern({"a": {"b": ["x"]}}, {})
        assert matches_pattern({"a": {"b": [{"exists": False}]}}, {})

    def test_multiple_keys_are_anded(self):
        pattern = {"event_type": ["created"], "size": [{"numeric": [">", 0]}]}
        assert matches_pattern(pattern, {"event_type": "created", "size": 10})
        assert not matches_pattern(pattern, {"event_type": "created", "size": 0})


class TestEventPattern:
    def test_compiled_pattern_filter(self):
        pattern = EventPattern({"value": {"event_type": ["created"]}})
        events = [
            {"value": {"event_type": "created", "path": "a"}},
            {"value": {"event_type": "modified", "path": "b"}},
            {"value": {"event_type": "created", "path": "c"}},
        ]
        assert [e["value"]["path"] for e in pattern.filter(events)] == ["a", "c"]

    def test_none_pattern_passes_everything(self):
        pattern = EventPattern(None)
        assert pattern.matches({"x": 1})
        assert pattern.pattern is None

    def test_json_round_trip(self):
        pattern = EventPattern('{"a": [1]}')
        assert pattern.matches({"a": 1})
        assert pattern.to_json() == '{"a": [1]}'

    def test_invalid_pattern_rejected_at_construction(self):
        with pytest.raises(PatternError):
            EventPattern("not json")
        with pytest.raises(PatternError):
            EventPattern(42)
