"""Tests for the function registry, executor and event-source mappings."""

import pytest

from repro.fabric import FabricCluster, FabricProducer, TopicConfig
from repro.faas.eventsource import EventSourceConfig, EventSourceMapping
from repro.faas.executor import LambdaExecutor
from repro.faas.function import FunctionDefinition, FunctionRegistry
from repro.faas.logs import LogService


def make_executor(handler, name="fn", **kwargs):
    registry = FunctionRegistry()
    registry.register(FunctionDefinition(name=name, handler=handler, **kwargs))
    return LambdaExecutor(registry, LogService(), max_retries=1)


class TestFunctionRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register(FunctionDefinition(name="f", handler=lambda e, c: e))
        assert "f" in registry
        assert registry.list() == ["f"]
        assert registry.get("f").name == "f"

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            FunctionRegistry().get("nope")

    def test_invalid_definitions_rejected(self):
        with pytest.raises(TypeError):
            FunctionRegistry().register(FunctionDefinition(name="f", handler="not callable"))
        with pytest.raises(ValueError):
            FunctionRegistry().register(
                FunctionDefinition(name="f", handler=lambda e, c: e, memory_mb=64)
            )
        with pytest.raises(ValueError):
            FunctionRegistry().register(
                FunctionDefinition(name="f", handler=lambda e, c: e, timeout_seconds=0)
            )

    def test_unregister_is_idempotent(self):
        registry = FunctionRegistry()
        registry.register(FunctionDefinition(name="f", handler=lambda e, c: e))
        registry.unregister("f")
        registry.unregister("f")
        assert registry.list() == []


class TestExecutor:
    def test_successful_invocation_returns_response(self):
        executor = make_executor(lambda event, ctx: {"echo": event["x"]})
        result = executor.invoke("fn", {"x": 41})
        assert result.success
        assert result.response == {"echo": 41}
        assert result.attempts == 1
        assert executor.stats.invocations == 1

    def test_context_carries_function_metadata(self):
        seen = {}

        def handler(event, context):
            seen["name"] = context.function_name
            seen["memory"] = context.memory_mb
            return None

        executor = make_executor(handler, memory_mb=256)
        executor.invoke("fn", {})
        assert seen == {"name": "fn", "memory": 256}

    def test_failing_handler_is_retried_then_reported(self):
        calls = {"n": 0}

        def handler(event, context):
            calls["n"] += 1
            raise RuntimeError("boom")

        executor = make_executor(handler)
        result = executor.invoke("fn", {})
        assert not result.success
        assert "boom" in result.error
        assert calls["n"] == 2  # initial + 1 retry
        assert executor.stats.retries == 1
        assert executor.stats.errors == 2

    def test_transient_failure_recovers_on_retry(self):
        calls = {"n": 0}

        def handler(event, context):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TimeoutError("transient")
            return "ok"

        executor = make_executor(handler)
        result = executor.invoke("fn", {})
        assert result.success
        assert result.attempts == 2

    def test_logs_record_start_end_and_errors(self):
        executor = make_executor(lambda e, c: 1 / 0)
        executor.invoke("fn", {})
        group = executor.logs.group("/aws/lambda/fn")
        assert group.filter(level="ERROR")
        assert any("START" in e.message for e in group.events)
        metrics = executor.logs.metrics("fn")
        assert metrics["errors"] == 2
        assert metrics["invocations"] == 2

    def test_metrics_empty_function(self):
        executor = make_executor(lambda e, c: None)
        assert executor.logs.metrics("fn")["invocations"] == 0

    def test_simulated_duration_used_for_billing(self):
        executor = make_executor(lambda e, c: None, simulated_duration_seconds=30.0)
        result = executor.invoke("fn", {})
        assert result.duration_seconds == 30.0
        assert executor.logs.metrics("fn")["duration_p50_s"] == 30.0

    def test_failed_final_attempt_is_billed(self):
        """Regression: billed time of a permanently failing invocation was
        never added to ExecutorStats.total_billed_seconds."""
        def boom(event, ctx):
            raise RuntimeError("kaput")

        executor = make_executor(boom, simulated_duration_seconds=0.5)
        result = executor.invoke("fn", {})
        assert not result.success
        # max_retries=1 in make_executor → 2 attempts × 0.5 s each.
        assert result.billed_duration_seconds == pytest.approx(1.0)
        assert executor.stats.total_billed_seconds == pytest.approx(
            result.billed_duration_seconds
        )

    def test_billing_accumulates_across_mixed_outcomes(self):
        calls = {"n": 0}

        def flaky(event, ctx):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("first invocation fails both attempts")
            return "ok"

        executor = make_executor(flaky, simulated_duration_seconds=0.25)
        first = executor.invoke("fn", {})   # fails twice: 0.5 s billed
        second = executor.invoke("fn", {})  # succeeds first try: 0.25 s billed
        assert not first.success and second.success
        assert executor.stats.total_billed_seconds == pytest.approx(0.75)

    def test_reserved_concurrency_throttles(self):
        registry = FunctionRegistry()
        registry.register(FunctionDefinition(name="fn", handler=lambda e, c: None))
        executor = LambdaExecutor(registry, reserved_concurrency=0)
        result = executor.invoke("fn", {})
        assert not result.success
        assert "Throttled" in result.error
        assert executor.stats.throttles == 1


@pytest.fixture
def cluster():
    cluster = FabricCluster(num_brokers=2)
    cluster.admin().create_topic("fs-events", TopicConfig(num_partitions=4))
    return cluster


class TestEventSourceMapping:
    def make_mapping(self, cluster, handler, config=None):
        registry = FunctionRegistry()
        registry.register(FunctionDefinition(name="action", handler=handler))
        executor = LambdaExecutor(registry)
        mapping = EventSourceMapping(cluster, "fs-events", "action", executor, config)
        return mapping, executor

    def test_poll_invokes_function_with_batch(self, cluster):
        received = []
        mapping, _ = self.make_mapping(
            cluster, lambda event, ctx: received.append(event)
        )
        producer = FabricProducer(cluster)
        for i in range(5):
            producer.send("fs-events", {"event_type": "created", "i": i})
        results = mapping.poll_once()
        assert len(results) == 1 and results[0].success
        assert len(received) == 1
        assert len(received[0]["records"]) == 5
        assert received[0]["records"][0]["topic"] == "fs-events"

    def test_filter_pattern_drops_non_matching_events(self, cluster):
        received = []
        config = EventSourceConfig(
            filter_pattern={"value": {"event_type": ["created"]}}
        )
        mapping, _ = self.make_mapping(
            cluster, lambda event, ctx: received.append(event), config
        )
        producer = FabricProducer(cluster)
        producer.send("fs-events", {"event_type": "created", "path": "/a"})
        producer.send("fs-events", {"event_type": "modified", "path": "/b"})
        producer.send("fs-events", {"event_type": "created", "path": "/c"})
        mapping.poll_once()
        paths = [r["value"]["path"] for r in received[0]["records"]]
        assert sorted(paths) == ["/a", "/c"]
        assert mapping.stats.records_filtered_out == 1

    def test_all_filtered_out_means_no_invocation(self, cluster):
        mapping, executor = self.make_mapping(
            cluster,
            lambda e, c: None,
            EventSourceConfig(filter_pattern={"value": {"event_type": ["created"]}}),
        )
        FabricProducer(cluster).send("fs-events", {"event_type": "modified"})
        assert mapping.poll_once() == []
        assert executor.stats.invocations == 0
        # Offsets still committed so pressure drains.
        assert mapping.pending_events() == 0

    def test_pending_events_reflects_lag(self, cluster):
        mapping, _ = self.make_mapping(cluster, lambda e, c: None)
        producer = FabricProducer(cluster)
        for i in range(7):
            producer.send("fs-events", {"i": i})
        assert mapping.pending_events() == 7
        mapping.poll_once()
        assert mapping.pending_events() == 0

    def test_drain_consumes_entire_backlog(self, cluster):
        seen = []
        mapping, _ = self.make_mapping(
            cluster,
            lambda event, ctx: seen.extend(event["records"]),
            EventSourceConfig(batch_size=10),
        )
        producer = FabricProducer(cluster)
        for i in range(55):
            producer.send("fs-events", {"i": i})
        mapping.drain()
        assert len(seen) == 55

    def test_drain_is_driven_by_consumer_lag_not_pending_events(self, cluster, monkeypatch):
        """The drain loop must use the cheap position-based lag() signal,
        never the full committed-offset pending_events() walk."""
        seen = []
        mapping, _ = self.make_mapping(
            cluster,
            lambda event, ctx: seen.extend(event["records"]),
            EventSourceConfig(batch_size=10),
        )
        producer = FabricProducer(cluster)
        for i in range(25):
            producer.send("fs-events", {"i": i})

        def boom():  # pragma: no cover - should never run
            raise AssertionError("drain called pending_events()")

        monkeypatch.setattr(mapping, "pending_events", boom)
        mapping.drain()
        assert len(seen) == 25
        assert mapping.lag() == 0

    def test_drain_on_disabled_mapping_returns_immediately(self, cluster):
        mapping, executor = self.make_mapping(cluster, lambda e, c: None)
        FabricProducer(cluster).send("fs-events", {"x": 1})
        mapping.disable()
        assert mapping.drain() == []
        assert executor.stats.invocations == 0

    def test_prefetching_mapping_drains_backlog_exactly_once(self, cluster):
        seen = []
        mapping, _ = self.make_mapping(
            cluster,
            lambda event, ctx: seen.extend(event["records"]),
            EventSourceConfig(batch_size=10, prefetch=True),
        )
        producer = FabricProducer(cluster)
        for i in range(40):
            producer.send("fs-events", {"i": i})
        mapping.drain()
        mapping.close()
        assert sorted(r["value"]["i"] for r in seen) == list(range(40))

    def test_disabled_mapping_does_not_poll(self, cluster):
        mapping, executor = self.make_mapping(cluster, lambda e, c: None)
        FabricProducer(cluster).send("fs-events", {"x": 1})
        mapping.disable()
        assert mapping.poll_once() == []
        assert executor.stats.invocations == 0
        mapping.enable()
        mapping.poll_once()
        assert executor.stats.invocations == 1

    def test_each_mapping_gets_its_own_consumer_group(self, cluster):
        m1, _ = self.make_mapping(cluster, lambda e, c: None)
        m2, _ = self.make_mapping(cluster, lambda e, c: None)
        assert m1.consumer_group != m2.consumer_group
        producer = FabricProducer(cluster)
        producer.send("fs-events", {"x": 1})
        # Both mappings see the same event independently.
        assert m1.poll_once() and m2.poll_once()

    def test_set_concurrency_clamps_and_counts_scale_events(self, cluster):
        mapping, _ = self.make_mapping(cluster, lambda e, c: None)
        assert mapping.concurrency == 1
        assert mapping.set_concurrency(3) == 3
        assert mapping.set_concurrency(99) == 4  # clamped to the partition count
        assert mapping.set_concurrency(0) == 1  # always one poller alive
        assert mapping.set_concurrency(1) == 1  # no-op, not a scale event
        assert mapping.stats.scale_events == 3

    def test_scaled_fleet_drains_backlog_exactly_once(self, cluster):
        seen = []
        mapping, _ = self.make_mapping(
            cluster,
            lambda event, ctx: seen.extend(event["records"]),
            EventSourceConfig(batch_size=10),
        )
        producer = FabricProducer(cluster)
        for i in range(40):
            producer.send("fs-events", {"i": i})
        mapping.set_concurrency(4)
        mapping.drain()
        assert sorted(r["value"]["i"] for r in seen) == list(range(40))
        assert mapping.lag() == 0

    def test_scale_event_rides_a_cooperative_rebalance(self, cluster):
        """Growing the fleet must not reshuffle the incumbent poller's
        whole assignment: it keeps a sticky subset and only the minimal
        delta moves to the new pollers."""
        mapping, _ = self.make_mapping(cluster, lambda e, c: None)
        incumbent = mapping._consumers[0]
        before = set(incumbent.assignment())
        assert len(before) == 4
        mapping.set_concurrency(2)
        mapping.poll_once()  # both pollers adopt; the rebalance settles
        mapping.poll_once()
        fleet_assignments = [set(c.assignment()) for c in mapping._consumers]
        assert fleet_assignments[0] <= before  # sticky: retained, not swapped
        assert incumbent.metrics.partitions_revoked == 2
        union = set().union(*fleet_assignments)
        assert union == set(cluster.partitions_for("fs-events"))
        assert sum(len(a) for a in fleet_assignments) == len(union)

    def test_latest_mapping_never_skips_events_across_a_scale_up(self, cluster):
        """Regression: 'latest' is pinned when a partition first enters the
        mapping's group.  Without the pin, scaling up moved never-polled
        partitions to new pollers that re-evaluated 'latest' at a later
        log end — silently skipping every event in between."""
        seen = []
        mapping, _ = self.make_mapping(
            cluster,
            lambda event, ctx: seen.extend(event["records"]),
            EventSourceConfig(starting_position="latest"),
        )
        # Events arriving after mapping creation but before any poll...
        producer = FabricProducer(cluster)
        for i in range(12):
            producer.send("fs-events", {"i": i})
        # ...must survive the partitions changing owners on a scale-up.
        mapping.set_concurrency(4)
        assert mapping.lag() == 12
        mapping.drain()
        assert sorted(r["value"]["i"] for r in seen) == list(range(12))

    def test_partition_growth_reaches_the_fleet_and_drains(self, cluster):
        """Regression: growing the topic after the mapping exists must
        trigger a rebalance onto the new partitions — lag() counted them
        but drain() could never assign them, busy-spinning max_polls."""
        seen = []
        mapping, _ = self.make_mapping(
            cluster, lambda event, ctx: seen.extend(event["records"])
        )
        mapping.poll_once()  # fleet settled on the original 4 partitions
        cluster.admin().set_partitions("fs-events", 6)
        producer = FabricProducer(cluster)
        producer.send("fs-events", {"i": 1}, partition=5)
        assert mapping.lag() == 1
        results = mapping.drain(max_polls=20)
        assert [r["value"]["i"] for r in seen] == [1]
        assert results and mapping.lag() == 0

    def test_scale_down_returns_partitions_to_survivors(self, cluster):
        seen = []
        mapping, _ = self.make_mapping(
            cluster, lambda event, ctx: seen.extend(event["records"])
        )
        mapping.set_concurrency(4)
        mapping.poll_once()
        mapping.set_concurrency(1)
        mapping.poll_once()
        survivor = mapping._consumers[0]
        assert set(survivor.assignment()) == set(
            cluster.partitions_for("fs-events")
        )
        producer = FabricProducer(cluster)
        for i in range(8):
            producer.send("fs-events", {"i": i})
        mapping.drain()
        assert sorted(r["value"]["i"] for r in seen) == list(range(8))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EventSourceConfig(batch_size=0).validate()
        with pytest.raises(ValueError):
            EventSourceConfig(batch_size=20_000).validate()
        with pytest.raises(ValueError):
            EventSourceConfig(batch_window_seconds=-1).validate()
        with pytest.raises(ValueError):
            EventSourceConfig(starting_position="middle").validate()

    def test_describe_reports_stats(self, cluster):
        mapping, _ = self.make_mapping(cluster, lambda e, c: None)
        FabricProducer(cluster).send("fs-events", {"x": 1})
        mapping.poll_once()
        info = mapping.describe()
        assert info["topic"] == "fs-events"
        assert info["stats"]["records_read"] == 1

    def test_failed_invocation_counted(self, cluster):
        mapping, executor = self.make_mapping(cluster, lambda e, c: 1 / 0)
        FabricProducer(cluster).send("fs-events", {"x": 1})
        results = mapping.poll_once()
        assert not results[0].success
        assert mapping.stats.failed_invocations == 1
