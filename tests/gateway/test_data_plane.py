"""Contract tests for the gateway data plane.

Produce (JSON and wire-format passthrough), long-poll fetch (early wake
on appends and deadline timeout), batched fetch over one session, group
offset commits and the cooperative consumer-group protocol — plus the
fabric error taxonomy surfacing with correct statuses and stable codes.
"""

import base64
import json
import threading
import time

import pytest

from repro.fabric.record import EventRecord, PackedRecordBatch
from repro.gateway import BATCH_CONTENT_TYPE


@pytest.fixture
def topic(client):
    client.post("/v1/topics", json_body={"name": "t", "config": {"num_partitions": 2}})
    return "t"


class TestProduceJSON:
    def test_produce_and_fetch_round_trip(self, client, topic):
        produced = client.post(
            "/v1/topics/t/partitions/0/records",
            json_body={
                "records": [
                    {"value": "a"},
                    {"value": "b", "key": "k", "headers": {"h": "1"}},
                ]
            },
        )
        assert produced.status == 201
        assert produced.payload["base_offset"] == 0
        assert produced.payload["last_offset"] == 1
        assert produced.payload["count"] == 2

        fetched = client.get("/v1/topics/t/partitions/0/records")
        assert fetched.status == 200
        records = fetched.payload["records"]
        assert [r["value"] for r in records] == ["a", "b"]
        assert records[1]["key"] == "k"
        assert records[1]["headers"] == {"h": "1"}
        assert fetched.payload["next_offset"] == 2
        assert fetched.payload["high_watermark"] == 2

    def test_produce_schema_violations_are_field_detailed(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/0/records",
            json_body={
                "records": [{"key": "no-value"}, {"value": "ok", "extra": 1}],
                "acks": 2,
            },
        )
        assert response.status == 400
        fields = response.payload["details"]["fields"]
        assert "records[0].value" in fields
        assert "records[1].extra" in fields
        assert "acks" in fields

    def test_produce_to_unknown_topic_is_404(self, client):
        response = client.post(
            "/v1/topics/ghost/partitions/0/records",
            json_body={"records": [{"value": "x"}]},
        )
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_TOPIC"

    def test_produce_to_unknown_partition_is_404(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/9/records",
            json_body={"records": [{"value": "x"}]},
        )
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_PARTITION"

    def test_acks_all_is_accepted(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/0/records",
            json_body={"records": [{"value": "x"}], "acks": "all"},
        )
        assert response.status == 201


class TestProduceWireFormat:
    def test_sealed_compressed_batch_crosses_untouched(self, client, cluster, topic):
        wire = (
            PackedRecordBatch.from_events(
                [EventRecord(value="v" * 200), EventRecord(value=b"\x00\x01raw")]
            )
            .seal_wire("gzip")
            .to_bytes()
        )
        produced = client.post(
            "/v1/topics/t/partitions/0/records",
            body=wire,
            headers={"Content-Type": BATCH_CONTENT_TYPE},
        )
        assert produced.status == 201
        assert produced.payload["count"] == 2

        fetched = client.get("/v1/topics/t/partitions/0/records")
        records = fetched.payload["records"]
        assert records[0]["value"] == "v" * 200
        # Binary values ride JSON base64'd with an explicit marker.
        assert records[1]["value_encoding"] == "base64"
        assert base64.b64decode(records[1]["value"]) == b"\x00\x01raw"

    def test_corrupt_wire_body_is_422(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/0/records",
            body=b"\xb4\x01garbage-bytes",
            headers={"Content-Type": BATCH_CONTENT_TYPE},
        )
        assert response.status == 422
        assert response.payload["code"] == "CORRUPT_BATCH"

    def test_empty_wire_body_is_400(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/0/records",
            body=b"",
            headers={"Content-Type": BATCH_CONTENT_TYPE},
        )
        assert response.status == 400
        assert response.payload["code"] == "MALFORMED_BODY"

    def test_unsupported_content_type_is_415(self, client, topic):
        response = client.post(
            "/v1/topics/t/partitions/0/records",
            body=b"<xml/>",
            headers={"Content-Type": "application/xml"},
        )
        assert response.status == 415
        assert response.payload["code"] == "UNSUPPORTED_MEDIA_TYPE"


class TestLongPollFetch:
    def test_fetch_without_wait_returns_immediately(self, client, topic):
        response = client.get("/v1/topics/t/partitions/0/records")
        assert response.status == 200
        assert response.payload["records"] == []

    def test_long_poll_wakes_early_on_append(self, client, cluster, topic):
        responses = {}

        def poll():
            responses["r"] = client.get(
                "/v1/topics/t/partitions/0/records",
                query={"max_wait_ms": "5000"},
            )

        start = time.monotonic()
        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.1)
        cluster.append("t", 0, EventRecord(value="wake"))
        poller.join(timeout=5.0)
        elapsed = time.monotonic() - start

        assert not poller.is_alive()
        response = responses["r"]
        assert response.status == 200
        assert [r["value"] for r in response.payload["records"]] == ["wake"]
        # Early wake: nowhere near the 5 s deadline.
        assert elapsed < 2.0

    def test_long_poll_times_out_empty(self, client, topic):
        start = time.monotonic()
        response = client.get(
            "/v1/topics/t/partitions/0/records", query={"max_wait_ms": "200"}
        )
        elapsed = time.monotonic() - start
        assert response.status == 200
        assert response.payload["records"] == []
        assert elapsed >= 0.15

    def test_min_bytes_holds_until_enough_data(self, client, cluster, topic):
        cluster.append("t", 0, EventRecord(value="small"))
        responses = {}

        def poll():
            responses["r"] = client.get(
                "/v1/topics/t/partitions/0/records",
                query={"max_wait_ms": "5000", "min_bytes": "200"},
            )

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.1)
        cluster.append("t", 0, EventRecord(value="x" * 400))
        poller.join(timeout=5.0)
        assert not poller.is_alive()
        assert len(responses["r"].payload["records"]) == 2

    def test_batch_fetch_serves_multiple_partitions(self, client, cluster, topic):
        cluster.append("t", 0, EventRecord(value="p0"))
        cluster.append("t", 1, EventRecord(value="p1"))
        response = client.post(
            "/v1/fetch",
            json_body={
                "requests": [
                    {"topic": "t", "partition": 0, "offset": 0},
                    {"topic": "t", "partition": 1, "offset": 0},
                ]
            },
        )
        assert response.status == 200
        by_partition = {
            p["partition"]: [r["value"] for r in p["records"]]
            for p in response.payload["partitions"]
        }
        assert by_partition == {0: ["p0"], 1: ["p1"]}

    def test_batch_fetch_nested_schema_errors(self, client, topic):
        response = client.post(
            "/v1/fetch",
            json_body={
                "requests": [
                    {"topic": "t", "partition": -1, "offset": -2},
                    {"topic": "t", "partition": 0, "offset": "x"},
                ]
            },
        )
        assert response.status == 400
        fields = response.payload["details"]["fields"]
        assert "requests[0].partition" in fields
        assert "requests[0].offset" in fields
        assert "expected integer" in fields["requests[1].offset"]

    def test_fetch_out_of_range_offset_is_416(self, client, cluster, topic):
        response = client.get(
            "/v1/topics/t/partitions/0/records", query={"offset": "99"}
        )
        assert response.status == 416
        assert response.payload["code"] == "OFFSET_OUT_OF_RANGE"

    def test_topic_offsets_endpoint(self, client, cluster, topic):
        cluster.append("t", 0, EventRecord(value="x"))
        response = client.get("/v1/topics/t/offsets")
        assert response.status == 200
        assert response.payload["partitions"]["0"] == {"beginning": 0, "end": 1}
        assert response.payload["partitions"]["1"] == {"beginning": 0, "end": 0}


class TestOffsetCommit:
    def test_commit_and_read_back(self, client, cluster, topic):
        cluster.append("t", 0, EventRecord(value="x"))
        committed = client.post(
            "/v1/groups/g/offsets",
            json_body={"offsets": [{"topic": "t", "partition": 0, "offset": 1}]},
        )
        assert committed.status == 200
        assert committed.payload["committed"] == [
            {"topic": "t", "partition": 0, "offset": 1}
        ]
        read = client.get("/v1/groups/g/offsets")
        assert read.payload["offsets"] == [
            {"topic": "t", "partition": 0, "offset": 1}
        ]

    def test_negative_offset_is_400_invalid_request(self, client, topic):
        response = client.post(
            "/v1/groups/g/offsets",
            json_body={"offsets": [{"topic": "t", "partition": 0, "offset": -1}]},
        )
        assert response.status == 400
        assert response.payload["code"] == "SCHEMA_VIOLATION" or (
            response.payload["code"] == "INVALID_REQUEST"
        )

    def test_generation_without_member_is_400(self, client, topic):
        response = client.post(
            "/v1/groups/g/offsets",
            json_body={
                "offsets": [{"topic": "t", "partition": 0, "offset": 0}],
                "generation": 1,
            },
        )
        assert response.status == 400
        assert response.payload["code"] == "INVALID_REQUEST"

    def test_stale_generation_commit_is_409(self, client, cluster, topic):
        joined = client.post(
            "/v1/groups/g/members", json_body={"client_id": "c", "topics": ["t"]}
        )
        member = joined.payload["member_id"]
        response = client.post(
            "/v1/groups/g/offsets",
            json_body={
                "offsets": [{"topic": "t", "partition": 0, "offset": 0}],
                "generation": 999,
                "member_id": member,
            },
        )
        assert response.status == 409
        assert response.payload["code"] == "ILLEGAL_GENERATION"


class TestConsumerGroups:
    def test_join_heartbeat_sync_leave_cycle(self, client, topic):
        joined = client.post(
            "/v1/groups/g/members",
            json_body={"client_id": "c1", "topics": ["t"]},
        )
        assert joined.status == 201
        member = joined.payload["member_id"]
        generation = joined.payload["generation"]
        assert sorted(tuple(tp) for tp in joined.payload["assignment"]) == [
            ("t", 0),
            ("t", 1),
        ]

        heartbeat = client.post(
            f"/v1/groups/g/members/{member}/heartbeat",
            json_body={"generation": generation},
        )
        assert heartbeat.status == 200

        synced = client.post(
            f"/v1/groups/g/members/{member}/sync",
            json_body={"generation": generation},
        )
        assert synced.status == 200
        assert synced.payload["generation"] == generation

        left = client.delete(f"/v1/groups/g/members/{member}")
        assert left.status == 200
        assert left.payload["generation"] == generation + 1

    def test_second_join_triggers_cooperative_handoff(self, client, topic):
        first = client.post(
            "/v1/groups/g/members", json_body={"client_id": "c1", "topics": ["t"]}
        ).payload
        second = client.post(
            "/v1/groups/g/members", json_body={"client_id": "c2", "topics": ["t"]}
        ).payload
        # Cooperative protocol: the newcomer only gets partitions that
        # were already free; the rest arrive after the survivor syncs.
        assert second["phase"] == "revoking"

        sync1 = client.post(
            f"/v1/groups/g/members/{first['member_id']}/sync",
            json_body={"generation": second["generation"]},
        ).payload
        sync2 = client.post(
            f"/v1/groups/g/members/{second['member_id']}/sync",
            json_body={"generation": sync1["generation"]},
        ).payload
        owned = sorted(
            tuple(tp) for tp in sync1["assignment"] + sync2["assignment"]
        )
        assert owned == [("t", 0), ("t", 1)]

    def test_heartbeat_with_stale_generation_is_409(self, client, topic):
        joined = client.post(
            "/v1/groups/g/members", json_body={"client_id": "c1", "topics": ["t"]}
        ).payload
        response = client.post(
            f"/v1/groups/g/members/{joined['member_id']}/heartbeat",
            json_body={"generation": 999},
        )
        assert response.status == 409
        assert response.payload["code"] in (
            "ILLEGAL_GENERATION",
            "REBALANCE_IN_PROGRESS",
        )
        assert response.payload["retriable"] is True

    def test_join_unknown_topic_is_404(self, client):
        response = client.post(
            "/v1/groups/g/members",
            json_body={"client_id": "c1", "topics": ["ghost"]},
        )
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_TOPIC"


class TestResponseShape:
    def test_error_bodies_always_have_the_three_keys(self, client, topic):
        responses = [
            client.get("/v1/topics/ghost"),
            client.post("/v1/topics", json_body={}),
            client.request("PUT", "/v1/fetch"),
            client.get("/v1/no/such/route"),
        ]
        for response in responses:
            assert set(response.payload) >= {"code", "message", "retriable"}
            assert response.payload["code"].isupper()

    def test_responses_are_json_serializable(self, client, cluster, topic):
        cluster.append("t", 0, EventRecord(value="x", headers={"a": "b"}))
        for response in [
            client.get("/v1/cluster"),
            client.get("/v1/topics/t"),
            client.get("/v1/topics/t/segments"),
            client.get("/v1/topics/t/partitions/0/records"),
        ]:
            assert response.status == 200
            json.dumps(response.payload)
