"""Contract tests for the gateway control plane.

The contract under test (modeled on the reference control-plane suite):
every response is schema'd JSON; schema violations answer 400 with
per-field detail; authorization denials answer 403 through the one
``(principal, operation, resource)`` hook; requests before dependency
initialization answer a retriable 503; unknown resources answer 404
with the fabric taxonomy's stable codes.
"""

import pytest

from repro.gateway import Gateway


class TestDependencyInitialization:
    def test_uninitialized_gateway_answers_503_everywhere(self, make_client):
        client = make_client(Gateway())
        for method, path in [
            ("GET", "/v1/topics"),
            ("POST", "/v1/topics"),
            ("GET", "/v1/cluster"),
            ("GET", "/v1/topics/t/partitions/0/records"),
        ]:
            response = client.request(method, path, json_body={"name": "t"})
            assert response.status == 503, (method, path)
            assert response.payload["code"] == "UNINITIALIZED"
            assert response.payload["retriable"] is True

    def test_attach_brings_the_gateway_up(self, cluster, make_client):
        gateway = Gateway()
        client = make_client(gateway)
        assert client.get("/v1/topics").status == 503
        gateway.attach(cluster)
        response = client.get("/v1/topics")
        assert response.status == 200
        assert response.payload == {"topics": []}

    def test_unknown_routes_still_404_while_uninitialized(self, make_client):
        # Routing happens before dependency resolution: a bad path is the
        # client's bug, not the server's readiness.
        response = make_client(Gateway()).get("/v1/not/a/route")
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_ROUTE"


class TestTopicLifecycle:
    def test_create_describe_delete_round_trip(self, client):
        created = client.post(
            "/v1/topics",
            json_body={"name": "orders", "config": {"num_partitions": 2}},
        )
        assert created.status == 201
        assert created.payload["name"] == "orders"
        assert created.payload["config"]["num_partitions"] == 2

        described = client.get("/v1/topics/orders")
        assert described.status == 200
        assert described.payload["name"] == "orders"

        listed = client.get("/v1/topics")
        assert listed.payload == {"topics": ["orders"]}

        deleted = client.delete("/v1/topics/orders")
        assert deleted.status == 200
        assert client.get("/v1/topics").payload == {"topics": []}

    def test_duplicate_create_is_409_with_stable_code(self, client):
        assert client.post("/v1/topics", json_body={"name": "t"}).status == 201
        response = client.post("/v1/topics", json_body={"name": "t"})
        assert response.status == 409
        assert response.payload["code"] == "TOPIC_ALREADY_EXISTS"
        assert response.payload["retriable"] is False

    def test_unknown_topic_is_404_with_stable_code(self, client):
        for response in [
            client.get("/v1/topics/ghost"),
            client.delete("/v1/topics/ghost"),
            client.get("/v1/topics/ghost/segments"),
        ]:
            assert response.status == 404
            assert response.payload["code"] == "UNKNOWN_TOPIC"

    def test_config_update_and_partition_grow(self, client):
        client.post("/v1/topics", json_body={"name": "t"})
        updated = client.put(
            "/v1/topics/t/config",
            json_body={"updates": {"retention_seconds": 60.0}},
        )
        assert updated.status == 200
        assert updated.payload["config"]["retention_seconds"] == 60.0

        grown = client.post(
            "/v1/topics/t/partitions", json_body={"num_partitions": 4}
        )
        assert grown.status == 200
        assert grown.payload["config"]["num_partitions"] == 4

        shrink = client.post(
            "/v1/topics/t/partitions", json_body={"num_partitions": 1}
        )
        assert shrink.status == 400
        assert shrink.payload["code"] == "INVALID_CONFIG"


class TestSchemaValidation:
    def test_schema_errors_carry_per_field_detail(self, client):
        response = client.post(
            "/v1/topics",
            json_body={"nam": "typo", "acfg": 1},
        )
        assert response.status == 400
        assert response.payload["code"] == "SCHEMA_VIOLATION"
        fields = response.payload["details"]["fields"]
        # All violations reported at once, not first-error-only.
        assert fields["nam"] == "unknown field"
        assert fields["acfg"] == "unknown field"
        assert "required" in fields["name"]

    def test_unknown_config_keys_are_schema_errors(self, client):
        response = client.post(
            "/v1/topics",
            json_body={"name": "t", "config": {"bogus_key": 1}},
        )
        assert response.status == 400
        assert "config.bogus_key" in response.payload["details"]["fields"]

    def test_type_mismatches_are_schema_errors(self, client):
        response = client.post(
            "/v1/topics", json_body={"name": ["not", "a", "string"]}
        )
        assert response.status == 400
        assert "expected string" in response.payload["details"]["fields"]["name"]

    def test_non_object_body_is_schema_error(self, client):
        response = client.post("/v1/topics", json_body=[1, 2, 3])
        assert response.status == 400
        assert "body" in response.payload["details"]["fields"]

    def test_malformed_json_is_400_malformed_body(self, client):
        response = client.post("/v1/topics", body=b"{not json")
        assert response.status == 400
        assert response.payload["code"] == "MALFORMED_BODY"

    def test_empty_config_update_is_rejected(self, client):
        client.post("/v1/topics", json_body={"name": "t"})
        response = client.put("/v1/topics/t/config", json_body={"updates": {}})
        assert response.status == 400
        assert "updates" in response.payload["details"]["fields"]

    def test_non_integer_path_segment_is_schema_error(self, client):
        response = client.post("/v1/brokers/not-a-number/fail")
        assert response.status == 400
        assert "broker" in response.payload["details"]["fields"]


class TestAuthorization:
    @pytest.fixture
    def secured(self, cluster, make_client):
        def only_admin(principal, operation, resource):
            return principal == "admin"

        return make_client(Gateway(cluster, admin_authorizer=only_admin))

    def test_denied_principal_gets_403(self, secured):
        response = secured.post(
            "/v1/topics", json_body={"name": "t"}, principal="mallory"
        )
        assert response.status == 403
        assert response.payload["code"] == "AUTHORIZATION_FAILED"
        assert "mallory" in response.payload["message"]

    def test_anonymous_is_a_principal_too(self, secured):
        # No auth header means principal None — which the hook may deny.
        assert secured.post("/v1/topics", json_body={"name": "t"}).status == 403

    def test_allowed_principal_passes(self, secured):
        response = secured.post(
            "/v1/topics", json_body={"name": "t"}, principal="admin"
        )
        assert response.status == 201

    def test_principal_via_x_repro_principal_header(self, secured):
        response = secured.post(
            "/v1/topics",
            json_body={"name": "t2"},
            headers={"X-Repro-Principal": "admin"},
        )
        assert response.status == 201


class TestBrokersAndCluster:
    def test_fail_and_restore_broker(self, client):
        client.post("/v1/topics", json_body={"name": "t"})
        failed = client.post("/v1/brokers/1/fail")
        assert failed.status == 200
        assert failed.payload["broker"] == 1

        restored = client.post("/v1/brokers/1/restore")
        assert restored.status == 200
        assert restored.payload == {"broker": 1, "online": True}

    def test_unknown_broker_is_404(self, client):
        response = client.post("/v1/brokers/99/fail")
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_BROKER"

    def test_describe_cluster(self, client):
        response = client.get("/v1/cluster")
        assert response.status == 200
        assert response.payload["name"] == "gateway-test"
        assert len(response.payload["brokers"]) == 3

    def test_run_retention(self, client):
        client.post("/v1/topics", json_body={"name": "t"})
        response = client.post("/v1/retention", query={"topic": "t"})
        assert response.status == 200
        assert response.payload == {"removed": {"t": {0: 0}}}


class TestGroups:
    def test_unknown_group_is_404(self, client):
        response = client.get("/v1/groups/ghost")
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_GROUP"

    def test_join_then_describe(self, client):
        client.post("/v1/topics", json_body={"name": "t"})
        joined = client.post(
            "/v1/groups/g/members",
            json_body={"client_id": "c1", "topics": ["t"]},
        )
        assert joined.status == 201
        listed = client.get("/v1/groups")
        assert listed.payload == {"groups": ["g"]}
        described = client.get("/v1/groups/g")
        assert described.status == 200


class TestRouting:
    def test_method_not_allowed_is_405(self, client):
        response = client.request("PUT", "/v1/topics")
        assert response.status == 405
        assert response.payload["code"] == "METHOD_NOT_ALLOWED"
        assert "GET" in response.payload["message"]

    def test_unknown_route_is_404(self, client):
        response = client.get("/v1/definitely/not/a/route")
        assert response.status == 404
        assert response.payload["code"] == "UNKNOWN_ROUTE"
