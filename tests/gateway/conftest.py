"""Shared fixtures for the gateway contract suite.

The contract tests drive :meth:`repro.gateway.Gateway.handle` directly —
the full routing / schema / authz / error-mapping stack without a
socket — because the HTTP handler delegates everything to that one
method (the socket itself is covered by ``test_smoke_socket.py``).
"""

import json
from typing import Any, Mapping, Optional

import pytest

from repro.fabric.cluster import FabricCluster
from repro.gateway import Gateway, GatewayResponse


class GatewayClient:
    """A tiny in-process client: JSON in, (status, payload) out."""

    def __init__(self, gateway: Gateway):
        self.gateway = gateway

    def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Any = None,
        body: bytes = b"",
        query: Optional[Mapping[str, str]] = None,
        headers: Optional[Mapping[str, str]] = None,
        principal: Optional[str] = None,
    ) -> GatewayResponse:
        headers = dict(headers or {})
        if json_body is not None:
            body = json.dumps(json_body).encode()
            headers.setdefault("Content-Type", "application/json")
        if principal is not None:
            headers["Authorization"] = f"Bearer {principal}"
        return self.gateway.handle(
            method, path, query=query, headers=headers, body=body
        )

    def get(self, path: str, **kw) -> GatewayResponse:
        return self.request("GET", path, **kw)

    def post(self, path: str, **kw) -> GatewayResponse:
        return self.request("POST", path, **kw)

    def put(self, path: str, **kw) -> GatewayResponse:
        return self.request("PUT", path, **kw)

    def delete(self, path: str, **kw) -> GatewayResponse:
        return self.request("DELETE", path, **kw)


@pytest.fixture
def cluster() -> FabricCluster:
    return FabricCluster(num_brokers=3, name="gateway-test")


@pytest.fixture
def gateway(cluster) -> Gateway:
    return Gateway(cluster)


@pytest.fixture
def client(gateway) -> GatewayClient:
    return GatewayClient(gateway)


@pytest.fixture
def make_client():
    """Wrap any :class:`Gateway` (secured, uninitialized, ...) in a client."""
    return GatewayClient
