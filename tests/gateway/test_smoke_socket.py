"""End-to-end smoke over a real HTTP socket.

The contract suites drive the :class:`Gateway` application object
in-process; this file proves the same object behind
:class:`GatewayServer` speaks actual HTTP — framing, content types,
status codes, wire-format passthrough bodies — using nothing but
``urllib`` from the stdlib.  CI runs this as the gateway smoke job.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.fabric.cluster import FabricCluster
from repro.fabric.record import EventRecord, PackedRecordBatch
from repro.gateway import BATCH_CONTENT_TYPE, Gateway, GatewayServer


@pytest.fixture
def server():
    cluster = FabricCluster(num_brokers=3, name="socket-smoke")
    with GatewayServer(Gateway(cluster)) as srv:
        yield srv


def _call(server, method, path, *, json_body=None, body=b"", headers=None):
    headers = dict(headers or {})
    if json_body is not None:
        body = json.dumps(json_body).encode()
        headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        server.url + path, data=body or None, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


def test_produce_fetch_commit_round_trip_over_the_socket(server):
    status, _ = _call(
        server, "POST", "/v1/topics", json_body={"name": "events"}
    )
    assert status == 201

    status, produced = _call(
        server,
        "POST",
        "/v1/topics/events/partitions/0/records",
        json_body={"records": [{"value": "one"}, {"value": "two", "key": "k"}]},
    )
    assert status == 201
    assert produced["count"] == 2

    status, fetched = _call(
        server, "GET", "/v1/topics/events/partitions/0/records?offset=0"
    )
    assert status == 200
    assert [r["value"] for r in fetched["records"]] == ["one", "two"]

    status, committed = _call(
        server,
        "POST",
        "/v1/groups/readers/offsets",
        json_body={"offsets": [{"topic": "events", "partition": 0, "offset": 2}]},
    )
    assert status == 200
    assert committed["committed"][0]["offset"] == 2

    status, read_back = _call(server, "GET", "/v1/groups/readers/offsets")
    assert status == 200
    assert read_back["offsets"] == [
        {"topic": "events", "partition": 0, "offset": 2}
    ]


def test_wire_format_batch_over_the_socket(server):
    _call(server, "POST", "/v1/topics", json_body={"name": "bin"})
    wire = (
        PackedRecordBatch.from_events(
            [EventRecord(value="wire-" + "x" * 100)]
        )
        .seal_wire("gzip")
        .to_bytes()
    )
    status, produced = _call(
        server,
        "POST",
        "/v1/topics/bin/partitions/0/records",
        body=wire,
        headers={"Content-Type": BATCH_CONTENT_TYPE},
    )
    assert status == 201
    assert produced["count"] == 1

    status, fetched = _call(
        server, "GET", "/v1/topics/bin/partitions/0/records"
    )
    assert status == 200
    assert fetched["records"][0]["value"] == "wire-" + "x" * 100


def test_error_statuses_cross_the_socket(server):
    status, body = _call(server, "GET", "/v1/topics/ghost")
    assert status == 404
    assert body["code"] == "UNKNOWN_TOPIC"

    status, body = _call(server, "POST", "/v1/topics", json_body={"bad": 1})
    assert status == 400
    assert body["code"] == "SCHEMA_VIOLATION"

    status, body = _call(server, "PUT", "/v1/topics")
    assert status == 405


def test_uninitialized_gateway_503s_over_the_socket():
    with GatewayServer(Gateway()) as server:
        status, body = _call(server, "GET", "/v1/topics")
        assert status == 503
        assert body["code"] == "UNINITIALIZED"
        assert body["retriable"] is True


def test_concurrent_requests_share_the_session_pool(server):
    import threading

    _call(server, "POST", "/v1/topics", json_body={"name": "t"})
    _call(
        server,
        "POST",
        "/v1/topics/t/partitions/0/records",
        json_body={"records": [{"value": "x"}]},
    )
    results = []
    lock = threading.Lock()

    def fetch():
        status, body = _call(
            server, "GET", "/v1/topics/t/partitions/0/records"
        )
        with lock:
            results.append((status, [r["value"] for r in body["records"]]))

    threads = [threading.Thread(target=fetch) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert results == [(200, ["x"])] * 8
