"""Gateway degradation: health probes, 429 caps, graceful drain, fencing.

PR 10's graceful-degradation contract: a saturated gateway answers 429
with ``Retry-After`` instead of queueing unboundedly; ``/v1/healthz`` /
``/v1/readyz`` give a load balancer liveness and readiness regardless of
drain state; ``begin_drain`` flips new traffic to 503 ``DRAINING`` while
waking every parked long-poll (so ``GatewayServer.close()`` never
strands a client); and the fabric's new :class:`FencedLeaderError` maps
to a retriable 503.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import FencedLeaderError
from repro.fabric.topic import TopicConfig
from repro.gateway import Gateway, GatewayServer
from repro.gateway.errors import DrainingError, TooManyRequestsError, error_body


def _make_topic(cluster, name="events", partitions=1):
    cluster.admin().create_topic(
        name, TopicConfig(num_partitions=partitions, replication_factor=2)
    )


class TestHealthEndpoints:
    def test_healthz_always_ok(self, client):
        response = client.get("/v1/healthz")
        assert response.status == 200
        assert response.payload == {"status": "ok"}

    def test_readyz_ready_with_cluster(self, client):
        response = client.get("/v1/readyz")
        assert response.status == 200
        assert response.payload["ready"] is True

    def test_readyz_503_when_uninitialized(self, make_client):
        client = make_client(Gateway())
        assert client.get("/v1/healthz").status == 200
        response = client.get("/v1/readyz")
        assert response.status == 503
        assert response.payload["status"] == "uninitialized"

    def test_readyz_503_when_draining_but_healthz_stays_up(
        self, gateway, client
    ):
        gateway.begin_drain()
        assert client.get("/v1/healthz").status == 200
        response = client.get("/v1/readyz")
        assert response.status == 503
        assert response.payload["status"] == "draining"


class TestInflightCaps:
    def test_cap_rejects_with_429_and_retry_after(self, cluster, make_client):
        _make_topic(cluster)
        gateway = Gateway(
            cluster, max_inflight_per_principal=1, retry_after_seconds=2.0
        )
        client = make_client(gateway)

        # Park one long-poll for the principal, then hit the cap.
        started = threading.Event()
        parked_status = []

        def parked():
            started.set()
            response = client.get(
                "/v1/topics/events/partitions/0/records",
                query={"max_wait_ms": "5000", "offset": "0"},
                principal="alice",
            )
            parked_status.append(response.status)

        thread = threading.Thread(target=parked, daemon=True)
        thread.start()
        started.wait(timeout=2.0)
        deadline = time.monotonic() + 2.0
        while gateway.inflight("alice") == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gateway.inflight("alice") == 1

        rejected = client.get(
            "/v1/topics/events/partitions/0/records",
            query={"offset": "0"},
            principal="alice",
        )
        assert rejected.status == 429
        assert rejected.payload["code"] == "TOO_MANY_REQUESTS"
        assert rejected.payload["retriable"] is True
        assert rejected.headers.get("Retry-After") == "2"
        assert rejected.payload["details"] == {"in_flight": 1, "cap": 1}

        # A different principal has its own budget.
        other = client.get(
            "/v1/topics/events/partitions/0/records",
            query={"offset": "0"},
            principal="bob",
        )
        assert other.status == 200

        # Unpark via drain so the worker thread exits promptly.
        gateway.begin_drain()
        thread.join(timeout=5.0)
        assert parked_status == [200]

    def test_cap_releases_after_request_finishes(self, cluster, make_client):
        _make_topic(cluster)
        gateway = Gateway(cluster, max_inflight_per_principal=1)
        client = make_client(gateway)
        for _ in range(3):  # sequential requests never trip the cap
            response = client.get(
                "/v1/topics/events/partitions/0/records",
                query={"offset": "0"},
                principal="alice",
            )
            assert response.status == 200
        assert gateway.inflight("alice") == 0

    def test_cap_validation(self, cluster):
        with pytest.raises(ValueError):
            Gateway(cluster, max_inflight_per_principal=0)


class TestDrain:
    def test_drain_rejects_new_requests_with_503(self, gateway, client):
        gateway.begin_drain()
        assert gateway.draining
        response = client.get("/v1/cluster")
        assert response.status == 503
        assert response.payload["code"] == "DRAINING"
        assert response.payload["retriable"] is True
        assert "Retry-After" in response.headers

    def test_drain_wakes_parked_long_poll(self, cluster, gateway, client):
        _make_topic(cluster)
        results = []

        def poll():
            results.append(
                client.get(
                    "/v1/topics/events/partitions/0/records",
                    query={"max_wait_ms": "30000", "offset": "0"},
                )
            )

        thread = threading.Thread(target=poll, daemon=True)
        thread.start()
        deadline = time.monotonic() + 2.0
        while gateway.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        gateway.begin_drain()
        thread.join(timeout=5.0)  # must NOT take the 30s budget
        assert not thread.is_alive()
        assert results[0].status == 200
        assert results[0].payload["records"] == []
        assert gateway.await_drained(timeout=2.0)

    def test_await_drained_when_idle(self, gateway):
        assert gateway.await_drained(timeout=0.1)


class TestServerClose:
    def test_close_drains_parked_poll_over_the_socket(self):
        cluster = FabricCluster(num_brokers=2, name="drain-socket")
        _make_topic(cluster)
        gateway = Gateway(cluster)
        server = GatewayServer(gateway).start()
        url = server.url
        statuses = []

        def poll():
            request = urllib.request.Request(
                f"{url}/v1/topics/events/partitions/0/records"
                "?max_wait_ms=30000&offset=0"
            )
            with urllib.request.urlopen(request, timeout=15) as response:
                statuses.append(response.status)

        thread = threading.Thread(target=poll, daemon=True)
        thread.start()
        deadline = time.monotonic() + 2.0
        while gateway.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        started = time.monotonic()
        server.close()  # graceful: drain, then shut the socket
        elapsed = time.monotonic() - started
        thread.join(timeout=5.0)
        assert statuses == [200]
        assert elapsed < 10.0  # nowhere near the 30s poll budget

        # Post-close the socket is really gone.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"{url}/v1/healthz", timeout=1)

    def test_stop_remains_idempotent(self):
        server = GatewayServer(Gateway(FabricCluster(num_brokers=1))).start()
        server.close()
        server.close()
        server.stop()


class TestErrorMapping:
    def test_fenced_leader_maps_to_retriable_503(self):
        status, body = error_body(FencedLeaderError("stale epoch 3"))
        assert status == 503
        assert body["code"] == "FENCED_LEADER"
        assert body["retriable"] is True

    def test_draining_and_429_bodies_are_schema_shaped(self):
        status, body = error_body(DrainingError("bye", retry_after=3.0))
        assert (status, body["code"], body["retriable"]) == (503, "DRAINING", True)
        status, body = error_body(TooManyRequestsError("cap", retry_after=0.2))
        assert (status, body["code"]) == (429, "TOO_MANY_REQUESTS")

    def test_retry_after_rounds_up_to_whole_seconds(self):
        assert TooManyRequestsError("x", retry_after=0.2).headers == {
            "Retry-After": "1"
        }
        assert TooManyRequestsError("x", retry_after=1.5).headers == {
            "Retry-After": "2"
        }


class TestIsolationParameter:
    def test_fetch_rejects_bad_isolation(self, cluster, client):
        _make_topic(cluster)
        response = client.get(
            "/v1/topics/events/partitions/0/records",
            query={"isolation": "dirty"},
        )
        assert response.status == 400
        assert "isolation" in response.payload["details"]["fields"]

    def test_batch_fetch_rejects_bad_isolation(self, cluster, client):
        _make_topic(cluster)
        response = client.post(
            "/v1/fetch",
            json_body={
                "requests": [{"topic": "events", "partition": 0, "offset": 0}],
                "isolation": "dirty",
            },
        )
        assert response.status == 400
        assert "isolation" in response.payload["details"]["fields"]

    def test_fetch_reports_high_watermark_and_log_end(self, cluster, client):
        _make_topic(cluster)
        client.post(
            "/v1/topics/events/partitions/0/records",
            json_body={"records": [{"value": {"n": 0}}, {"value": {"n": 1}}]},
        )
        response = client.get(
            "/v1/topics/events/partitions/0/records", query={"offset": "0"}
        )
        assert response.status == 200
        # Gateway produce replicates synchronously, so committed == end.
        assert response.payload["high_watermark"] == 2
        assert response.payload["log_end_offset"] == 2
        assert len(response.payload["records"]) == 2
        uncommitted = client.get(
            "/v1/topics/events/partitions/0/records",
            query={"offset": "0", "isolation": "uncommitted"},
        )
        assert len(uncommitted.payload["records"]) == 2


class TestRetryAfterOverSocket:
    def test_429_header_crosses_the_wire(self):
        cluster = FabricCluster(num_brokers=2, name="cap-socket")
        _make_topic(cluster)
        gateway = Gateway(
            cluster, max_inflight_per_principal=1, retry_after_seconds=1.0
        )
        with GatewayServer(gateway) as server:
            started = threading.Event()

            def parked():
                request = urllib.request.Request(
                    f"{server.url}/v1/topics/events/partitions/0/records"
                    "?max_wait_ms=10000&offset=0",
                    headers={"Authorization": "Bearer alice"},
                )
                started.set()
                with urllib.request.urlopen(request, timeout=15):
                    pass

            thread = threading.Thread(target=parked, daemon=True)
            thread.start()
            started.wait(timeout=2.0)
            deadline = time.monotonic() + 2.0
            while gateway.inflight("alice") == 0 and time.monotonic() < deadline:
                time.sleep(0.01)

            request = urllib.request.Request(
                f"{server.url}/v1/topics/events/partitions/0/records?offset=0",
                headers={"Authorization": "Bearer alice"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["code"] == "TOO_MANY_REQUESTS"
        thread.join(timeout=5.0)
