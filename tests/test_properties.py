"""Property-based tests (hypothesis) for core data structures and invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.auth.acl import AclStore, Operation
from repro.fabric.group import (
    PHASE_STABLE,
    ConsumerGroupCoordinator,
    range_assign,
    sticky_cooperative_assign,
)
from repro.fabric.partition import PartitionLog
from repro.fabric.record import EventRecord
from repro.fabric.retention import compact
from repro.faas.patterns import matches_pattern
from repro.faas.scaling import ProcessingPressureScaler, ScalingPolicy
from repro.simulation.kernel import SimulationKernel
from repro.simulation.metrics import LatencyStats

# --------------------------------------------------------------------------- #
# Partition log invariants
# --------------------------------------------------------------------------- #
values = st.one_of(st.integers(), st.text(max_size=20), st.binary(max_size=64))


@given(st.lists(values, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_log_offsets_are_dense_and_ordered(payloads):
    log = PartitionLog("t", 0)
    offsets = [log.append(EventRecord(value=v)) for v in payloads]
    assert offsets == list(range(len(payloads)))
    fetched = log.fetch(0, max_records=len(payloads))
    assert [r.value for r in fetched] == payloads


@given(st.lists(values, min_size=1, max_size=60), st.integers(min_value=0, max_value=80))
@settings(max_examples=50, deadline=None)
def test_truncation_never_renumbers_surviving_records(payloads, cut):
    log = PartitionLog("t", 0)
    for value in payloads:
        log.append(EventRecord(value=value))
    end_before = log.log_end_offset
    log.truncate_before(min(cut, end_before))
    assert log.log_end_offset == end_before
    for stored in log.read_all():
        assert payloads[stored.offset] == stored.value


@given(
    st.lists(
        st.tuples(st.sampled_from(["k0", "k1", "k2", None]), st.integers()),
        min_size=1, max_size=80,
    )
)
@settings(max_examples=50, deadline=None)
def test_compaction_keeps_latest_value_per_key(entries):
    log = PartitionLog("t", 0)
    for key, value in entries:
        log.append(EventRecord(value=value, key=key))
    compact(log)
    survivors = log.read_all()
    # Offsets stay sorted and unique.
    offsets = [r.offset for r in survivors]
    assert offsets == sorted(offsets) and len(offsets) == len(set(offsets))
    # The surviving value for each key is the last one written.
    expected = {}
    for key, value in entries:
        if key is not None:
            expected[key] = value
    surviving_keyed = {r.key: r.value for r in survivors if r.key is not None}
    assert surviving_keyed == expected
    # Unkeyed records are never removed.
    assert sum(1 for r in survivors if r.key is None) == sum(
        1 for key, _ in entries if key is None
    )


# --------------------------------------------------------------------------- #
# Consumer-group assignment invariants
# --------------------------------------------------------------------------- #
@given(
    st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=8,
             unique=True),
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_range_assignment_is_a_partition_of_the_partitions(members, num_partitions):
    partitions = [("topic", i) for i in range(num_partitions)]
    assignment = range_assign(members, partitions)
    assigned = [tp for tps in assignment.values() for tp in tps]
    assert sorted(assigned) == sorted(partitions)          # nothing lost or duplicated
    sizes = sorted(len(tps) for tps in assignment.values())
    if sizes:
        assert sizes[-1] - sizes[0] <= 1                   # balanced within one


# --------------------------------------------------------------------------- #
# Cooperative sticky assignment invariants
#
# These two properties deliberately do NOT pin max_examples: the nightly
# CI soak job (HYPOTHESIS_PROFILE=soak, see tests/conftest.py) raises the
# budget to hammer exactly these invariants.
# --------------------------------------------------------------------------- #
join_leave_ops = st.lists(
    st.one_of(st.just("join"), st.integers(min_value=0, max_value=9)),
    min_size=1,
    max_size=12,
)


@given(st.integers(min_value=0, max_value=40), join_leave_ops)
@settings(deadline=None)
def test_sticky_assignment_invariants_over_join_leave_sequences(num_partitions, ops):
    """For any join/leave sequence: the union stays an exact duplicate-free
    partition cover, every member's retained set is a subset of its prior
    assignment, nobody is revoked below the floor quota, and sizes stay
    balanced within one."""
    partitions = [("topic", i) for i in range(num_partitions)]
    partition_set = set(partitions)
    counter = itertools.count()
    members: list = []
    prior: dict = {}
    for op in ops:
        if op == "join":
            members.append(f"m{next(counter)}")
        elif members:
            prior.pop(members.pop(op % len(members)), None)
        if not members:
            prior = {}
            continue
        target = sticky_cooperative_assign(members, partitions, prior)
        assert sorted(target) == sorted(members)
        assigned = [tp for tps in target.values() for tp in tps]
        assert sorted(assigned) == sorted(partitions)  # exact cover ...
        assert len(assigned) == len(set(assigned))     # ... no duplicates
        floor_quota = num_partitions // len(members)
        for member in members:
            new = set(target[member])
            old = set(prior.get(member, ())) & partition_set
            retained = new & old
            assert retained <= old  # stickiness: retained ⊆ prior
            # Minimal revocation: a member only sheds what its quota forces;
            # anyone at or below the floor quota keeps everything.
            assert len(old - new) <= max(0, len(old) - floor_quota)
        sizes = sorted(len(tps) for tps in target.values())
        assert sizes[-1] - sizes[0] <= 1
        prior = target


@given(st.integers(min_value=1, max_value=16), join_leave_ops)
@settings(deadline=None)
def test_cooperative_protocol_converges_to_an_exact_cover(num_partitions, ops):
    """Driving the coordinator itself through any join/leave sequence and
    letting every member acknowledge (as polling consumers do) always
    settles into a stable generation whose assignments exactly cover the
    partitions."""
    coordinator = ConsumerGroupCoordinator()
    partitions = [("t", i) for i in range(num_partitions)]
    members: list = []
    for op in ops:
        if op == "join" or not members:
            member_id, _, _ = coordinator.join("g", "c", ["t"], partitions)
            members.append(member_id)
        else:
            coordinator.leave("g", members.pop(op % len(members)), partitions)
        if not members:
            continue
        for _ in range(4):  # settle: each member acks, last ack promotes
            if coordinator.rebalance_phase("g") == PHASE_STABLE:
                break
            generation = coordinator.generation("g")
            for member_id in members:
                coordinator.sync("g", member_id, generation)
        assert coordinator.rebalance_phase("g") == PHASE_STABLE
        described = coordinator.describe("g")["members"]
        assigned = sorted(tp for tps in described.values() for tp in tps)
        assert assigned == sorted(partitions)


# --------------------------------------------------------------------------- #
# ACL monotonicity
# --------------------------------------------------------------------------- #
operations = st.sampled_from(list(Operation))


@given(st.lists(st.tuples(st.sampled_from(["alice", "bob"]), st.sampled_from(["t1", "t2"]),
                          operations), max_size=30))
@settings(max_examples=50, deadline=None)
def test_acl_grant_then_revoke_restores_denial(grants):
    store = AclStore()
    for principal, topic, operation in grants:
        store.grant(principal, topic, [operation])
        assert store.is_authorized(principal, operation, topic)
    for principal, topic, operation in grants:
        store.revoke(principal, topic)
    for principal, topic, operation in grants:
        assert not store.is_authorized(principal, operation, topic)


# --------------------------------------------------------------------------- #
# EventBridge pattern algebra
# --------------------------------------------------------------------------- #
event_values = st.one_of(st.integers(-100, 100), st.text(max_size=8), st.booleans())


@given(st.dictionaries(st.sampled_from("abcd"), event_values, max_size=4))
@settings(max_examples=60, deadline=None)
def test_empty_pattern_matches_everything_and_literal_self_matches(event):
    assert matches_pattern(None, event)
    assert matches_pattern({}, event)
    # A pattern built from the event itself always matches it.
    pattern = {key: [value] for key, value in event.items()}
    assert matches_pattern(pattern, event)


@given(st.dictionaries(st.sampled_from("abcd"), st.integers(-50, 50), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_anything_but_is_complement_of_literal(event):
    key, value = next(iter(event.items()))
    assert matches_pattern({key: [value]}, event)
    assert not matches_pattern({key: [{"anything-but": [value]}]}, event)


# --------------------------------------------------------------------------- #
# Scaling policy invariants
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=0, max_value=256),
    st.integers(min_value=1, max_value=256),
    st.integers(min_value=1, max_value=512),
)
@settings(max_examples=80, deadline=None)
def test_scaler_output_is_always_within_bounds(backlog, in_flight, current, partitions):
    scaler = ProcessingPressureScaler(ScalingPolicy(), partitions=partitions)
    decision = scaler.next_concurrency(backlog, in_flight, current)
    assert 0 <= decision <= scaler.concurrency_ceiling
    if backlog + in_flight == 0:
        assert decision == 0
    else:
        assert decision >= 1


# --------------------------------------------------------------------------- #
# DES kernel: time never goes backwards
# --------------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1,
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_kernel_executes_events_in_nondecreasing_time_order(delays):
    kernel = SimulationKernel()
    execution_times = []
    for delay in delays:
        kernel.schedule(delay, lambda: execution_times.append(kernel.now))
    kernel.run()
    assert execution_times == sorted(execution_times)
    assert len(execution_times) == len(delays)


# --------------------------------------------------------------------------- #
# Latency statistics
# --------------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_latency_percentiles_are_ordered_and_bounded(samples):
    stats = LatencyStats.from_samples(samples)
    assert min(samples) - 1e-9 <= stats.median_ms <= max(samples) + 1e-9
    assert stats.median_ms <= stats.p99_ms + 1e-9
    assert stats.p99_ms <= max(samples) + 1e-9
    assert stats.count == len(samples)
