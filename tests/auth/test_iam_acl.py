"""Tests for the IAM service and the topic ACL store."""

import pytest

from repro.auth.acl import AclStore, Operation
from repro.auth.iam import (
    AccessDeniedError,
    IamService,
    NoSuchEntityError,
    PolicyStatement,
)


class TestIamIdentities:
    def test_create_identity_idempotent(self):
        iam = IamService()
        a = iam.create_identity("user-1")
        b = iam.create_identity("user-1")
        assert a is b
        assert iam.has_identity("user-1")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            IamService().create_identity("x", kind="group")

    def test_unknown_identity_raises(self):
        with pytest.raises(NoSuchEntityError):
            IamService().identity("ghost")

    def test_delete_identity_removes_keys(self):
        iam = IamService()
        key = iam.create_access_key("user-1")
        iam.delete_identity("user-1")
        assert not iam.has_identity("user-1")
        with pytest.raises(AccessDeniedError):
            iam.authenticate(key.access_key_id, key.secret_access_key)


class TestAccessKeys:
    def test_create_key_returns_usable_credentials(self):
        iam = IamService()
        key = iam.create_access_key("alice")
        assert key.access_key_id.startswith("AKIA")
        assert iam.authenticate(key.access_key_id, key.secret_access_key) == "alice"

    def test_bad_secret_rejected(self):
        iam = IamService()
        key = iam.create_access_key("alice")
        with pytest.raises(AccessDeniedError):
            iam.authenticate(key.access_key_id, "wrong")

    def test_deactivated_key_rejected(self):
        iam = IamService()
        key = iam.create_access_key("alice")
        iam.deactivate_key(key.access_key_id)
        with pytest.raises(AccessDeniedError):
            iam.authenticate(key.access_key_id, key.secret_access_key)

    def test_deactivate_unknown_key_raises(self):
        with pytest.raises(NoSuchEntityError):
            IamService().deactivate_key("AKIA000")

    def test_multiple_keys_per_principal(self):
        iam = IamService()
        iam.create_access_key("alice")
        iam.create_access_key("alice")
        assert len(iam.keys_for("alice")) == 2


class TestPolicies:
    def test_allow_matching_action_and_resource(self):
        iam = IamService()
        iam.create_identity("alice")
        iam.attach_policy(
            "alice",
            PolicyStatement.allow(["kafka-cluster:WriteData"], ["topic/sdl-*"]),
        )
        assert iam.is_allowed("alice", "kafka-cluster:WriteData", "topic/sdl-events")
        assert not iam.is_allowed("alice", "kafka-cluster:ReadData", "topic/sdl-events")
        assert not iam.is_allowed("alice", "kafka-cluster:WriteData", "topic/other")

    def test_explicit_deny_overrides_allow(self):
        iam = IamService()
        iam.create_identity("alice")
        iam.attach_policy("alice", PolicyStatement.allow(["*"], ["*"]))
        iam.attach_policy("alice", PolicyStatement.deny(["kafka-cluster:Delete*"], ["*"]))
        assert iam.is_allowed("alice", "kafka-cluster:WriteData", "topic/x")
        assert not iam.is_allowed("alice", "kafka-cluster:DeleteTopic", "topic/x")

    def test_unknown_principal_denied(self):
        assert not IamService().is_allowed("ghost", "any", "thing")

    def test_check_raises_on_denial(self):
        iam = IamService()
        iam.create_identity("alice")
        with pytest.raises(AccessDeniedError):
            iam.check("alice", "kafka-cluster:WriteData", "topic/x")

    def test_invalid_effect_rejected(self):
        with pytest.raises(ValueError):
            PolicyStatement("Maybe", ("a",), ("r",))

    def test_detach_all_policies(self):
        iam = IamService()
        iam.create_identity("alice")
        iam.attach_policy("alice", PolicyStatement.allow(["*"], ["*"]))
        iam.detach_all_policies("alice")
        assert not iam.is_allowed("alice", "x", "y")


class TestAclStore:
    def test_grant_and_check(self):
        acl = AclStore()
        acl.grant("alice", "topic-a", ["READ", "write"])
        assert acl.is_authorized("alice", "READ", "topic-a")
        assert acl.is_authorized("alice", Operation.WRITE, "topic-a")
        assert not acl.is_authorized("alice", "DESCRIBE", "topic-a")
        assert not acl.is_authorized("bob", "READ", "topic-a")
        assert not acl.is_authorized(None, "READ", "topic-a")

    def test_owner_grant_gives_all_operations(self):
        acl = AclStore()
        acl.grant_owner("alice", "t")
        assert acl.operations("alice", "t") == {
            Operation.READ, Operation.WRITE, Operation.DESCRIBE,
        }

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            AclStore().grant("alice", "t", ["FLY"])

    def test_revoke_partial_and_full(self):
        acl = AclStore()
        acl.grant_owner("alice", "t")
        acl.revoke("alice", "t", ["WRITE"])
        assert acl.operations("alice", "t") == {Operation.READ, Operation.DESCRIBE}
        acl.revoke("alice", "t")
        assert acl.operations("alice", "t") == set()
        assert acl.revoke("alice", "t") is None  # idempotent

    def test_revoke_topic_clears_every_principal(self):
        acl = AclStore()
        acl.grant("alice", "t", ["READ"])
        acl.grant("bob", "t", ["READ"])
        assert acl.revoke_topic("t") == 2
        assert not acl.is_authorized("alice", "READ", "t")

    def test_topics_for_principal(self):
        acl = AclStore()
        acl.grant_owner("alice", "b")
        acl.grant_owner("alice", "a")
        acl.grant("alice", "c", ["READ"])
        assert acl.topics_for("alice") == ["a", "b"]
        assert acl.topics_for("alice", Operation.READ) == ["a", "b", "c"]

    def test_group_resolution(self):
        groups = {"alice": ["sdl-team"]}
        acl = AclStore(group_resolver=lambda p: groups.get(p, []))
        acl.grant("sdl-team", "shared-topic", ["READ", "DESCRIBE"])
        assert acl.is_authorized("alice", "READ", "shared-topic")
        assert not acl.is_authorized("mallory", "READ", "shared-topic")
        assert "shared-topic" in acl.topics_for("alice")

    def test_as_authorizer_integrates_with_cluster(self):
        from repro.fabric import FabricCluster
        from repro.fabric.errors import AuthorizationError
        from repro.fabric.record import EventRecord

        acl = AclStore()
        acl.grant_owner("alice", "t")
        cluster = FabricCluster(num_brokers=1, authorizer=acl.as_authorizer())
        cluster.admin().create_topic("t")
        cluster.append("t", 0, EventRecord(value=1), principal="alice")
        with pytest.raises(AuthorizationError):
            cluster.append("t", 0, EventRecord(value=1), principal="bob")

    def test_principals_for_topic(self):
        acl = AclStore()
        acl.grant("alice", "t", ["READ"])
        acl.grant("bob", "t", ["WRITE"])
        principals = acl.principals_for("t")
        assert set(principals) == {"alice", "bob"}
