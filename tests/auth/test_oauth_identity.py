"""Tests for identity federation and the OAuth authorization server."""

import pytest

from repro.auth.identity import IdentityStore
from repro.auth.oauth import (
    AuthError,
    AuthorizationServer,
    InsufficientScopeError,
    InvalidTokenError,
    Scope,
)


@pytest.fixture
def auth():
    server = AuthorizationServer()
    server.register_resource_server("octopus", ["all", "topics", "triggers"])
    server.register_resource_server("transfer", ["transfer"])
    return server


class TestIdentityStore:
    def test_create_identity_and_principal_form(self):
        store = IdentityStore()
        identity = store.create_identity("alice", "uchicago.edu")
        assert identity.principal == "alice@uchicago.edu"
        assert store.lookup("alice@uchicago.edu") is identity

    def test_create_identity_idempotent(self):
        store = IdentityStore()
        a = store.create_identity("alice", "anl.gov")
        b = store.create_identity("alice", "anl.gov")
        assert a is b
        assert len(store.identities()) == 1

    def test_provider_registered_once_per_domain(self):
        store = IdentityStore()
        store.create_identity("a", "anl.gov")
        store.create_identity("b", "anl.gov")
        assert len(store.providers()) == 1
        assert store.provider("anl.gov").domain == "anl.gov"

    def test_unknown_provider_raises(self):
        with pytest.raises(KeyError):
            IdentityStore().provider("nowhere.org")

    def test_groups_membership(self):
        store = IdentityStore()
        store.create_identity("alice", "anl.gov")
        store.create_identity("bob", "anl.gov")
        store.create_group("sdl-team", members=["alice@anl.gov"])
        store.add_to_group("sdl-team", "bob@anl.gov")
        assert store.group_members("sdl-team") == ["alice@anl.gov", "bob@anl.gov"]
        assert store.groups_for("bob@anl.gov") == ["sdl-team"]
        store.remove_from_group("sdl-team", "alice@anl.gov")
        assert store.group_members("sdl-team") == ["bob@anl.gov"]

    def test_group_requires_known_principal(self):
        store = IdentityStore()
        with pytest.raises(KeyError):
            store.add_to_group("team", "ghost@nowhere")


class TestLoginFlow:
    def test_login_issues_valid_scoped_token(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        validated = auth.validate(token.token, required_scope="octopus:all")
        assert validated.principal == "alice@uchicago.edu"
        assert token.refresh_token is not None

    def test_scope_string_form(self):
        assert Scope("octopus", "all").scope_string == "octopus:all"

    def test_unknown_scope_rejected(self, auth):
        with pytest.raises(AuthError):
            auth.login("alice", "uchicago.edu", ["octopus:doesnotexist"])
        with pytest.raises(AuthError):
            auth.login("alice", "uchicago.edu", ["unregistered:all"])
        with pytest.raises(AuthError):
            auth.login("alice", "uchicago.edu", ["malformed"])
        with pytest.raises(AuthError):
            auth.login("alice", "uchicago.edu", [])

    def test_token_without_required_scope_rejected(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:topics"])
        with pytest.raises(InsufficientScopeError):
            auth.validate(token.token, required_scope="octopus:triggers")

    def test_expired_token_rejected(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"], lifetime=10.0)
        assert auth.validate(token.token, now=token.issued_at + 5) is not None
        with pytest.raises(InvalidTokenError):
            auth.validate(token.token, now=token.issued_at + 11)

    def test_unknown_token_rejected(self, auth):
        with pytest.raises(InvalidTokenError):
            auth.validate("garbage")

    def test_client_credentials_grant(self, auth):
        token = auth.client_credentials_grant("ows-service", ["octopus:all"])
        assert auth.validate(token.token).principal == "ows-service"
        assert token.refresh_token is None


class TestRefreshRevoke:
    def test_refresh_rotates_token(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        new = auth.refresh(token.refresh_token)
        assert new.token != token.token
        with pytest.raises(InvalidTokenError):
            auth.validate(token.token)
        assert auth.validate(new.token).principal == "alice@uchicago.edu"

    def test_refresh_token_single_use(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        auth.refresh(token.refresh_token)
        with pytest.raises(InvalidTokenError):
            auth.refresh(token.refresh_token)

    def test_revoke_single_token(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        auth.revoke(token.token)
        with pytest.raises(InvalidTokenError):
            auth.validate(token.token)

    def test_revoke_all_for_principal(self, auth):
        t1 = auth.login("alice", "uchicago.edu", ["octopus:all"])
        t2 = auth.login("alice", "uchicago.edu", ["octopus:topics"])
        other = auth.login("bob", "anl.gov", ["octopus:all"])
        assert auth.revoke_all_for("alice@uchicago.edu") == 2
        for token in (t1, t2):
            with pytest.raises(InvalidTokenError):
                auth.validate(token.token)
        assert auth.validate(other.token)

    def test_introspection(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        info = auth.introspect(token.token)
        assert info["active"] is True
        assert info["sub"] == "alice@uchicago.edu"
        auth.revoke(token.token)
        assert auth.introspect(token.token) == {"active": False}


class TestDelegation:
    def test_dependent_token_carries_principal_and_target_scopes(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        delegated = auth.dependent_token(token.token, "transfer")
        assert delegated.principal == "alice@uchicago.edu"
        assert delegated.scopes == ["transfer:transfer"]
        assert delegated.delegated_from == token.token

    def test_dependent_token_requires_valid_source(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        auth.revoke(token.token)
        with pytest.raises(InvalidTokenError):
            auth.dependent_token(token.token, "transfer")

    def test_dependent_token_unknown_resource_server(self, auth):
        token = auth.login("alice", "uchicago.edu", ["octopus:all"])
        with pytest.raises(AuthError):
            auth.dependent_token(token.token, "unknown-service")
