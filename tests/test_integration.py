"""Cross-subsystem integration tests: SDK → OWS → fabric → triggers → services,
plus failure-injection scenarios spanning several components."""

import pytest

from repro.core import OctopusDeployment
from repro.faas.function import FunctionDefinition
from repro.fabric.consumer import ConsumerConfig
from repro.fabric.errors import AuthorizationError
from repro.fabric.mirrormaker import MirrorMaker
from repro.fabric.cluster import FabricCluster
from repro.services.storage import ObjectStore
from repro.services.transfer import TransferService


@pytest.fixture
def deployment():
    return OctopusDeployment.create()


class TestEndToEndEventFlow:
    def test_chained_triggers_transfer_then_analyze_then_notify(self, deployment):
        """The three-rule chain from the paper's introduction: data acquisition
        triggers a transfer, transfer completion triggers analysis, analysis
        completion triggers a notification."""
        user = deployment.client("pi", "uchicago.edu")
        for topic in ("acquisition", "transfers", "analyses"):
            user.register_topic(topic)
        transfer_service = TransferService()
        notifications = []
        producer = user.producer()

        def transfer_handler(event, ctx):
            for record in event["records"]:
                task = transfer_service.submit(
                    source_endpoint="instrument",
                    destination_endpoint="hpc",
                    source_path=record["value"]["path"],
                )
                producer.send("transfers", {"status": task.status,
                                            "path": record["value"]["path"]})
            return len(event["records"])

        def analysis_handler(event, ctx):
            for record in event["records"]:
                producer.send("analyses", {"result": "peaks-found",
                                           "path": record["value"]["path"]})
            return len(event["records"])

        def notify_handler(event, ctx):
            notifications.extend(r["value"]["path"] for r in event["records"])

        triggers = deployment.triggers
        triggers.register_function(FunctionDefinition(name="start-transfer",
                                                      handler=transfer_handler))
        triggers.register_function(FunctionDefinition(name="run-analysis",
                                                      handler=analysis_handler))
        triggers.register_function(FunctionDefinition(name="email-pi",
                                                      handler=notify_handler))
        user.create_trigger("acquisition", "start-transfer")
        user.create_trigger("transfers", "run-analysis",
                            filter_pattern={"value": {"status": ["SUCCEEDED"]}})
        user.create_trigger("analyses", "email-pi")

        for index in range(3):
            producer.send("acquisition", {"path": f"/raw/scan_{index}.h5"})
        # Each pass drains every trigger; three passes propagate the chain.
        for _ in range(3):
            deployment.run_triggers()
        assert sorted(notifications) == [f"/raw/scan_{i}.h5" for i in range(3)]
        assert len(transfer_service.tasks(status="SUCCEEDED")) == 3

    def test_persistence_sink_archives_topic_events(self, deployment):
        store = ObjectStore()
        deployment.cluster.admin().add_persistence_sink(store.persistence_sink("archive"))
        user = deployment.client("archivist", "anl.gov")
        user.register_topic("persisted", {"persist_to_store": True})
        producer = user.producer()
        for index in range(4):
            producer.send("persisted", {"index": index})
        assert len(store.list("archive", prefix="persisted/")) == 4

    def test_cross_region_mirroring_of_an_octopus_topic(self, deployment):
        user = deployment.client("ops", "anl.gov")
        user.register_topic("telemetry", {"num_partitions": 2})
        producer = user.producer()
        for index in range(10):
            producer.send("telemetry", {"index": index})
        west = FabricCluster(num_brokers=2, name="us-west-2")
        mirror = MirrorMaker(deployment.cluster, west, topic_prefix="east.",
                             source_principal="ops@anl.gov")
        stats = mirror.sync_topic("telemetry")
        assert stats.records_mirrored == 10
        assert sum(west.end_offsets("east.telemetry").values()) == 10


class TestFailureInjection:
    def test_broker_failure_is_transparent_to_sdk_clients(self, deployment):
        user = deployment.client("resilient", "anl.gov")
        user.register_topic("durable", {"num_partitions": 2, "replication_factor": 2})
        producer = user.producer()
        for index in range(10):
            producer.send("durable", {"index": index})
        deployment.cluster.admin().fail_broker(0)
        for index in range(10, 20):
            producer.send("durable", {"index": index})
        values = [v["index"] for v in user.read_all("durable")]
        assert sorted(values) == list(range(20))

    def test_consumer_crash_redelivers_uncommitted_events(self, deployment):
        user = deployment.client("worker", "anl.gov")
        user.register_topic("tasks")
        producer = user.producer()
        for index in range(6):
            producer.send("tasks", {"index": index})
        config = ConsumerConfig(group_id="workers", enable_auto_commit=False)
        first = user.consumer(["tasks"], config)
        assert len(first.poll_flat()) == 6
        # Crash before commit: kick the dead member so the group rebalances.
        deployment.cluster.groups.leave(
            "workers", first.member_id, deployment.cluster.partitions_for("tasks")
        )
        second = user.consumer(["tasks"], ConsumerConfig(group_id="workers",
                                                         enable_auto_commit=False))
        assert len(second.poll_flat()) == 6  # at-least-once redelivery

    def test_trigger_action_failure_is_retried_and_logged(self, deployment):
        user = deployment.client("fragile", "anl.gov")
        user.register_topic("flaky")
        attempts = {"n": 0}

        def flaky_handler(event, ctx):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ConnectionError("transfer service unavailable")
            return "ok"

        deployment.triggers.register_function(
            FunctionDefinition(name="flaky-action", handler=flaky_handler)
        )
        user.create_trigger("flaky", "flaky-action")
        user.producer().send("flaky", {"x": 1})
        results = deployment.run_triggers()
        assert sum(results.values()) == 1
        assert attempts["n"] == 2  # failed once, retried successfully
        assert deployment.logs.metrics("flaky-action")["errors"] == 1

    def test_revoked_user_loses_data_plane_access(self, deployment):
        owner = deployment.client("owner", "anl.gov")
        guest = deployment.client("guest", "uchicago.edu")
        owner.register_topic("shared")
        owner.grant_user("shared", "guest@uchicago.edu", ["READ", "DESCRIBE"])
        owner.publish("shared", {"x": 1})
        assert guest.read_all("shared") == [{"x": 1}]
        owner.revoke_user("shared", "guest@uchicago.edu")
        with pytest.raises(AuthorizationError):
            guest.read_all("shared", group_id="second-attempt")

    def test_zookeeper_remains_source_of_truth_after_broker_failure(self, deployment):
        user = deployment.client("owner", "anl.gov")
        user.register_topic("metadata-check")
        deployment.cluster.admin().fail_broker(1)
        assert deployment.metadata.topic_owner("metadata-check") == "owner@anl.gov"
        assert "metadata-check" in user.list_topics()
