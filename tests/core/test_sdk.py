"""Tests for the SDK: login manager, token store and the high-level client."""

import time

import pytest

from repro.core import OctopusDeployment
from repro.core.errors import NotAuthorizedError, NotFoundError
from repro.core.login import LoginManager
from repro.core.tokenstore import TokenStore
from repro.faas.function import FunctionDefinition
from repro.fabric.consumer import ConsumerConfig
from repro.fabric.errors import AuthorizationError


@pytest.fixture
def deployment():
    return OctopusDeployment.create()


class TestTokenStore:
    def test_store_and_fetch_token(self):
        store = TokenStore()
        store.store_token("alice", "octopus", "tok", refresh_token="ref",
                          expires_at=time.time() + 100, scopes=["octopus:all"])
        entry = store.get_token("alice", "octopus")
        assert entry["access_token"] == "tok"
        assert entry["refresh_token"] == "ref"
        assert entry["scopes"] == ["octopus:all"]

    def test_missing_token_returns_none(self):
        assert TokenStore().get_token("nobody", "octopus") is None

    def test_token_freshness(self):
        store = TokenStore()
        store.store_token("a", "octopus", "t", expires_at=time.time() + 1000)
        assert store.token_is_fresh("a", "octopus")
        store.store_token("a", "octopus", "t", expires_at=time.time() + 10)
        assert not store.token_is_fresh("a", "octopus", margin_seconds=60)
        assert not store.token_is_fresh("ghost", "octopus")

    def test_replace_and_delete_token(self):
        store = TokenStore()
        store.store_token("a", "octopus", "t1", expires_at=1.0)
        store.store_token("a", "octopus", "t2", expires_at=2.0)
        assert store.get_token("a", "octopus")["access_token"] == "t2"
        store.delete_token("a", "octopus")
        assert store.get_token("a", "octopus") is None

    def test_credentials_round_trip(self):
        store = TokenStore()
        store.store_credentials("alice", {"access_key": "AK", "secret_key": "SK"})
        assert store.get_credentials("alice")["access_key"] == "AK"
        store.delete_credentials("alice")
        assert store.get_credentials("alice") is None

    def test_principals_listing(self):
        store = TokenStore()
        store.store_token("b", "octopus", "t", expires_at=1.0)
        store.store_token("a", "octopus", "t", expires_at=1.0)
        assert store.principals() == ["a", "b"]

    def test_on_disk_store_persists(self, tmp_path):
        path = str(tmp_path / "storage.db")
        store = TokenStore(path)
        store.store_token("a", "octopus", "tok", expires_at=time.time() + 50)
        store.close()
        reopened = TokenStore(path)
        assert reopened.get_token("a", "octopus")["access_token"] == "tok"


class TestLoginManager:
    def test_login_caches_token(self, deployment):
        manager = LoginManager(deployment.auth)
        token = manager.login("alice", "uchicago.edu")
        assert manager.principal == "alice@uchicago.edu"
        assert manager.get_token() == token
        # A second login reuses the cached token rather than re-authenticating.
        assert manager.login("alice", "uchicago.edu") == token

    def test_expired_token_is_refreshed(self, deployment):
        manager = LoginManager(deployment.auth, refresh_margin_seconds=0.0)
        token = manager.login("alice", "uchicago.edu")
        # Force the cached entry to look expired.
        cached = manager.store.get_token("alice@uchicago.edu", "octopus")
        manager.store.store_token(
            "alice@uchicago.edu", "octopus", cached["access_token"],
            refresh_token=cached["refresh_token"], expires_at=time.time() - 10,
        )
        refreshed = manager.get_token()
        assert refreshed != token
        assert deployment.auth.validate(refreshed).principal == "alice@uchicago.edu"

    def test_get_token_requires_login(self, deployment):
        with pytest.raises(RuntimeError):
            LoginManager(deployment.auth).get_token()

    def test_logout_revokes_and_clears(self, deployment):
        manager = LoginManager(deployment.auth)
        token = manager.login("alice", "uchicago.edu")
        manager.logout()
        assert manager.store.get_token("alice@uchicago.edu", "octopus") is None
        from repro.auth.oauth import InvalidTokenError
        with pytest.raises(InvalidTokenError):
            deployment.auth.validate(token)


class TestOctopusClient:
    def test_end_to_end_topic_lifecycle(self, deployment):
        alice = deployment.client("alice", "uchicago.edu")
        assert alice.list_topics() == []
        info = alice.register_topic("instrument-data", {"num_partitions": 2})
        assert info["owner"] == "alice@uchicago.edu"
        assert alice.list_topics() == ["instrument-data"]
        alice.configure_topic("instrument-data", retention_seconds=60.0)
        alice.set_partitions("instrument-data", 4)
        assert alice.get_topic("instrument-data")["config"]["num_partitions"] == 4
        alice.release_topic("instrument-data")
        assert alice.list_topics() == []

    def test_publish_and_read_all(self, deployment):
        alice = deployment.client("alice")
        alice.register_topic("t")
        for i in range(5):
            alice.publish("t", {"i": i})
        assert [v["i"] for v in alice.read_all("t")] == [0, 1, 2, 3, 4]

    def test_create_key_is_cached(self, deployment):
        alice = deployment.client("alice")
        first = alice.create_key()
        second = alice.create_key()
        assert first == second
        third = alice.create_key(refresh=True)
        assert third["access_key"] != first["access_key"]

    def test_producer_consumer_respect_acls(self, deployment):
        alice = deployment.client("alice")
        bob = deployment.client("bob", "anl.gov")
        alice.register_topic("private")
        alice.publish("private", {"secret": 1})
        bob_producer = bob.producer()
        with pytest.raises(AuthorizationError):
            bob_producer.send("private", {"intrusion": True})
        alice.grant_user("private", "bob@anl.gov", ["READ", "DESCRIBE"])
        values = bob.read_all("private")
        assert values == [{"secret": 1}]
        # READ does not imply WRITE.
        with pytest.raises(AuthorizationError):
            bob_producer.send("private", {"intrusion": True})

    def test_shared_consumer_group_across_clients(self, deployment):
        alice = deployment.client("alice")
        alice.register_topic("stream", {"num_partitions": 2})
        producer = alice.producer()
        for i in range(10):
            producer.send("stream", i)
        c1 = alice.consumer(["stream"], ConsumerConfig(group_id="g", enable_auto_commit=False))
        values = [r.value for r in c1.poll_flat(max_records=100)]
        assert sorted(values) == list(range(10))

    def test_trigger_lifecycle_via_sdk(self, deployment):
        alice = deployment.client("alice")
        alice.register_topic("events")
        processed = []
        deployment.triggers.register_function(
            FunctionDefinition(
                name="collect", handler=lambda e, c: processed.extend(e["records"])
            )
        )
        trigger = alice.create_trigger(
            "events", "collect",
            filter_pattern={"value": {"event_type": ["created"]}},
            batch_size=50,
        )
        assert trigger["topic"] == "events"
        alice.publish("events", {"event_type": "created", "n": 1})
        alice.publish("events", {"event_type": "deleted", "n": 2})
        deployment.run_triggers()
        assert len(processed) == 1 and processed[0]["value"]["n"] == 1
        listed = alice.list_triggers()
        assert len(listed) == 1
        alice.update_trigger(trigger["trigger_id"], enabled=False)
        alice.publish("events", {"event_type": "created", "n": 3})
        deployment.run_triggers()
        assert len(processed) == 1  # disabled trigger did not fire
        alice.delete_trigger(trigger["trigger_id"])
        assert alice.list_triggers() == []

    def test_errors_are_mapped_to_sdk_exceptions(self, deployment):
        alice = deployment.client("alice")
        with pytest.raises(NotFoundError):
            alice.get_topic("missing")
        bob = deployment.client("bob", "anl.gov")
        alice.register_topic("owned")
        with pytest.raises(NotAuthorizedError):
            bob.release_topic("owned")

    def test_users_only_see_their_triggers(self, deployment):
        alice = deployment.client("alice")
        bob = deployment.client("bob", "anl.gov")
        alice.register_topic("a-topic")
        bob.register_topic("b-topic")
        deployment.triggers.register_function(
            FunctionDefinition(name="noop", handler=lambda e, c: None)
        )
        alice.create_trigger("a-topic", "noop")
        assert len(alice.list_triggers()) == 1
        assert bob.list_triggers() == []

    def test_logout_invalidates_client(self, deployment):
        alice = deployment.client("alice")
        alice.register_topic("t")
        alice.logout()
        with pytest.raises(Exception):
            alice.list_topics()
