"""Regression tests for trigger updates and autoscaler accounting."""

import pytest

from repro.auth.iam import IamService
from repro.coordination.metadata import ClusterMetadataRegistry
from repro.coordination.zookeeper import ZooKeeperEnsemble
from repro.core.errors import ValidationError
from repro.core.triggers import TriggerManager, TriggerSpec
from repro.faas.function import FunctionDefinition
from repro.fabric import FabricCluster, FabricProducer, TopicConfig


@pytest.fixture
def manager():
    cluster = FabricCluster(num_brokers=1)
    cluster.admin().create_topic("t", TopicConfig(num_partitions=2, replication_factor=1))
    manager = TriggerManager(
        cluster, ClusterMetadataRegistry(ZooKeeperEnsemble()), IamService()
    )
    manager.register_function(
        FunctionDefinition(name="fn", handler=lambda event, ctx: len(event["records"]))
    )
    return manager


class TestUpdateTrigger:
    def test_invalid_update_leaves_spec_untouched(self, manager):
        """Regression: the spec used to be mutated field-by-field *before*
        validation, so a rejected update corrupted the deployed trigger."""
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn", batch_size=50)
        )
        with pytest.raises(ValidationError):
            manager.update_trigger(
                "alice", trigger.trigger_id,
                {"batch_size": 0, "batch_window_seconds": 9.0},
            )
        assert trigger.spec.batch_size == 50
        assert trigger.spec.batch_window_seconds == 0.0
        assert trigger.mapping.config.batch_size == 50

    def test_valid_update_applies_atomically(self, manager):
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn")
        )
        described = manager.update_trigger(
            "alice", trigger.trigger_id, {"batch_size": 7, "enabled": False}
        )
        assert described["batch_size"] == 7
        assert trigger.spec.batch_size == 7
        assert trigger.mapping.config.batch_size == 7
        assert not trigger.mapping.enabled


class TestScalingAccountsInFlight:
    def test_evaluate_scaling_reads_per_function_in_flight(self, manager):
        """Regression: evaluate_scaling hardcoded in_flight=0; it must read
        the in-flight count of *this trigger's* function, not the whole
        executor, so a busy neighbour cannot pin an idle trigger's scale."""
        manager.register_function(
            FunctionDefinition(name="other", handler=lambda event, ctx: None)
        )
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn")
        )
        observed = {}

        class RecordingScaler:
            def next_concurrency(self, backlog, in_flight, current):
                observed["in_flight"] = in_flight
                return current

        trigger.scaler = RecordingScaler()
        with manager.executor._lock:
            # Simulate concurrent invocations: 3 of this trigger's function,
            # 5 of an unrelated one.
            manager.executor._in_flight_by_function = {"fn": 3, "other": 5}
        try:
            manager.evaluate_scaling()
        finally:
            with manager.executor._lock:
                manager.executor._in_flight_by_function = {}
        assert observed["in_flight"] == 3

    def test_scaling_decisions_are_applied_to_the_poller_fleet(self, manager):
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn")
        )
        FabricProducer(manager.cluster).send_batch("t", list(range(50)))
        decisions = manager.evaluate_scaling()
        assert trigger.mapping.concurrency == max(
            1, min(decisions[trigger.trigger_id], 2)
        )
        assert trigger.mapping.concurrency == 2  # backlog over 2 partitions

    def test_disabled_mapping_is_not_scaled(self, manager):
        """Regression: spawning pollers for a disabled mapping wedges the
        cooperative rebalance — the new members never poll, so they can
        never acknowledge their join."""
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn", enabled=False)
        )
        FabricProducer(manager.cluster).send_batch("t", list(range(50)))
        decisions = manager.evaluate_scaling()
        assert decisions[trigger.trigger_id] == trigger.concurrency
        assert trigger.mapping.concurrency == 1
        # Re-enabling resumes scaling on the next tick.
        manager.update_trigger("alice", trigger.trigger_id, {"enabled": True})
        manager.evaluate_scaling()
        assert trigger.mapping.concurrency == 2

    def test_trigger_drains_produced_events(self, manager):
        producer = FabricProducer(manager.cluster)
        trigger = manager.create_trigger(
            "alice", TriggerSpec(topic="t", function_name="fn", batch_size=500)
        )
        producer.send_batch("t", list(range(40)))
        invocations = manager.process_pending(trigger.trigger_id)
        assert invocations[trigger.trigger_id] >= 1
        assert trigger.mapping.stats.records_read == 40
        assert trigger.mapping.pending_events() == 0
