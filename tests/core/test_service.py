"""Tests for the Octopus Web Service routes and the control-plane services."""

import pytest

from repro.core import OctopusDeployment
from repro.core.errors import NotFoundError
from repro.core.routes import Router
from repro.faas.function import FunctionDefinition


@pytest.fixture
def deployment():
    return OctopusDeployment.create()


@pytest.fixture
def token(deployment):
    return deployment.auth.login("alice", "uchicago.edu", ["octopus:all"]).token


class TestRouter:
    def test_static_and_parameterised_routes(self):
        router = Router()
        router.add("GET", "/topics", lambda p, b, u: {"ok": 1})
        router.add("GET", "/topic/<topic>", lambda p, b, u: p)
        route, params = router.resolve("GET", "/topic/sdl-events")
        assert params == {"topic": "sdl-events"}
        route, params = router.resolve("get", "/topics")
        assert params == {}

    def test_unknown_route_raises(self):
        router = Router()
        with pytest.raises(NotFoundError):
            router.resolve("GET", "/nothing")

    def test_method_mismatch_raises(self):
        router = Router()
        router.add("GET", "/topics", lambda p, b, u: {})
        with pytest.raises(NotFoundError):
            router.resolve("POST", "/topics")

    def test_multi_parameter_route(self):
        router = Router()
        router.add("POST", "/topic/<topic>/user", lambda p, b, u: p)
        _, params = router.resolve("POST", "/topic/abc/user")
        assert params == {"topic": "abc"}

    def test_routes_listing(self):
        router = Router()
        router.add("GET", "/topics", lambda p, b, u: {})
        assert router.routes() == ["GET /topics"]


class TestAuthentication:
    def test_missing_token_rejected(self, deployment):
        status, body = deployment.service.handle("GET", "/topics")
        assert status == 403

    def test_garbage_token_rejected(self, deployment):
        status, body = deployment.service.handle("GET", "/topics", token="nope")
        assert status == 401

    def test_valid_token_accepted(self, deployment, token):
        status, body = deployment.service.handle("GET", "/topics", token=token)
        assert status == 200
        assert body == {"topics": []}

    def test_unknown_route_returns_404(self, deployment, token):
        status, _ = deployment.service.handle("GET", "/bogus", token=token)
        assert status == 404


class TestTopicRoutes:
    def test_register_topic_grants_owner_access(self, deployment, token):
        status, body = deployment.service.handle(
            "PUT", "/topic/sdl-events", token=token,
            body={"config": {"num_partitions": 2}},
        )
        assert status == 200
        assert body["owner"] == "alice@uchicago.edu"
        assert body["config"]["num_partitions"] == 2
        assert deployment.cluster.has_topic("sdl-events")

    def test_register_topic_is_idempotent(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, body = deployment.service.handle("PUT", "/topic/t", token=token)
        assert status == 200

    def test_other_user_cannot_take_over_topic(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        bob_token = deployment.auth.login("bob", "anl.gov", ["octopus:all"]).token
        status, body = deployment.service.handle("PUT", "/topic/t", token=bob_token)
        assert status == 403

    def test_invalid_topic_names_rejected(self, deployment, token):
        status, _ = deployment.service.handle("PUT", "/topic/bad name!", token=token)
        assert status == 400

    def test_get_topic_and_list_topics(self, deployment, token):
        deployment.service.handle("PUT", "/topic/a", token=token)
        deployment.service.handle("PUT", "/topic/b", token=token)
        status, body = deployment.service.handle("GET", "/topics", token=token)
        assert body["topics"] == ["a", "b"]
        status, body = deployment.service.handle("GET", "/topic/a", token=token)
        assert status == 200 and body["name"] == "a"

    def test_get_unregistered_topic_404(self, deployment, token):
        status, _ = deployment.service.handle("GET", "/topic/nope", token=token)
        assert status == 404

    def test_configure_topic_updates_config(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, body = deployment.service.handle(
            "POST", "/topic/t", token=token, body={"retention_seconds": 3600.0},
        )
        assert status == 200
        assert body["config"]["retention_seconds"] == 3600.0

    def test_configure_topic_rejects_bad_values(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, _ = deployment.service.handle(
            "POST", "/topic/t", token=token, body={"cleanup_policy": "zap"},
        )
        assert status == 400
        status, _ = deployment.service.handle("POST", "/topic/t", token=token, body={})
        assert status == 400

    def test_set_partitions_route(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, body = deployment.service.handle(
            "POST", "/topic/t/partitions", token=token, body={"num_partitions": 8},
        )
        assert status == 200 and body["num_partitions"] == 8
        assert deployment.cluster.topic("t").num_partitions == 8
        status, _ = deployment.service.handle(
            "POST", "/topic/t/partitions", token=token, body={},
        )
        assert status == 400

    def test_grant_and_revoke_user(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, body = deployment.service.handle(
            "POST", "/topic/t/user", token=token,
            body={"action": "grant", "user": "bob@anl.gov", "operations": ["READ", "DESCRIBE"]},
        )
        assert status == 200
        assert "bob@anl.gov" in body["acl"]
        bob_token = deployment.auth.login("bob", "anl.gov", ["octopus:all"]).token
        status, body = deployment.service.handle("GET", "/topics", token=bob_token)
        assert body["topics"] == ["t"]
        status, _ = deployment.service.handle(
            "POST", "/topic/t/user", token=token,
            body={"action": "revoke", "user": "bob@anl.gov"},
        )
        assert status == 200
        status, body = deployment.service.handle("GET", "/topics", token=bob_token)
        assert body["topics"] == []

    def test_owner_access_cannot_be_revoked(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, _ = deployment.service.handle(
            "POST", "/topic/t/user", token=token,
            body={"action": "revoke", "user": "alice@uchicago.edu"},
        )
        assert status == 400

    def test_user_route_requires_user_and_valid_action(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, _ = deployment.service.handle(
            "POST", "/topic/t/user", token=token, body={"action": "grant"},
        )
        assert status == 400
        status, _ = deployment.service.handle(
            "POST", "/topic/t/user", token=token,
            body={"action": "share", "user": "bob@anl.gov"},
        )
        assert status == 400

    def test_delete_topic(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, body = deployment.service.handle("DELETE", "/topic/t", token=token)
        assert status == 200 and body["status"] == "deleted"
        assert not deployment.cluster.has_topic("t")
        status, body = deployment.service.handle("GET", "/topics", token=token)
        assert body["topics"] == []

    def test_non_owner_cannot_configure_or_delete(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        bob_token = deployment.auth.login("bob", "anl.gov", ["octopus:all"]).token
        for method, path, body in [
            ("POST", "/topic/t", {"retention_seconds": 1.0}),
            ("POST", "/topic/t/partitions", {"num_partitions": 4}),
            ("DELETE", "/topic/t", None),
            ("POST", "/topic/t/user", {"action": "grant", "user": "eve@x.org"}),
        ]:
            status, _ = deployment.service.handle(method, path, token=bob_token, body=body)
            assert status == 403


class TestAdminAuthorizationHook:
    """OWS ownership checks flow through the FabricAdmin (principal,
    operation, resource) hook, so SDK-less admin access is governed too."""

    def test_mutations_travel_through_the_hook(self, deployment, token):
        calls = []
        topics = deployment.service.topics
        original = topics.authorize_admin

        def recording(principal, operation, resource):
            calls.append((principal, operation, resource))
            return original(principal, operation, resource)

        topics.authorize_admin = recording
        deployment.service.handle(
            "PUT", "/topic/governed", token=token, body={}
        )
        deployment.service.handle(
            "POST", "/topic/governed/partitions", token=token,
            body={"num_partitions": 4},
        )
        assert ("alice@uchicago.edu", "CREATE_TOPIC", "topic:governed") in calls
        assert ("alice@uchicago.edu", "ALTER_TOPIC", "topic:governed") in calls

    def test_sdk_less_admin_is_governed_by_ownership(self, deployment, token):
        deployment.service.handle("PUT", "/topic/owned", token=token, body={})
        topics = deployment.service.topics
        from repro.fabric.errors import AuthorizationError

        mallory = topics.admin_for("mallory@evil.example")
        with pytest.raises(AuthorizationError):
            mallory.delete_topic("owned")
        with pytest.raises(AuthorizationError):
            mallory.update_topic_config("owned", retention_hours=1)
        with pytest.raises(AuthorizationError):
            mallory.create_topic("owned")  # registered to someone else
        # Broker/cluster-scoped control operations stay off-limits to users.
        with pytest.raises(AuthorizationError):
            topics.admin_for("alice@uchicago.edu").fail_broker(0)
        # The owner's admin view works end to end.
        owner = topics.admin_for("alice@uchicago.edu")
        owner.set_partitions("owned", 2)
        assert deployment.cluster.topic("owned").num_partitions == 2

    def test_fabric_missing_topic_maps_to_404_not_a_crash(self, deployment, token):
        """Regression: a topic registered in metadata but missing from the
        fabric (metadata recovered from a loss) must answer configuration
        requests with 404, not leak UnknownTopicError out of handle()."""
        deployment.service.handle("PUT", "/topic/ghost", token=token, body={})
        deployment.cluster.admin().delete_topic("ghost")  # fabric-side only
        status, _ = deployment.service.handle(
            "POST", "/topic/ghost", token=token, body={"retention_hours": 1}
        )
        assert status == 404
        status, _ = deployment.service.handle(
            "POST", "/topic/ghost/partitions", token=token,
            body={"num_partitions": 4},
        )
        assert status == 404
        status, _ = deployment.service.handle("DELETE", "/topic/ghost", token=token)
        assert status == 200

    def test_non_owner_route_rejection_maps_to_403(self, deployment, token):
        deployment.service.handle("PUT", "/topic/mine", token=token, body={})
        other = deployment.auth.login("bob", "anl.gov", ["octopus:all"]).token
        status, _ = deployment.service.handle(
            "POST", "/topic/mine", token=other, body={"retention_hours": 1}
        )
        assert status == 403
        status, _ = deployment.service.handle(
            "DELETE", "/topic/mine", token=other
        )
        assert status == 403
        status, _ = deployment.service.handle(
            "POST", "/topic/mine/partitions", token=other,
            body={"num_partitions": 8},
        )
        assert status == 403


class TestCreateKey:
    def test_create_key_returns_credentials_and_maps_identity(self, deployment, token):
        status, body = deployment.service.handle("GET", "/create_key", token=token)
        assert status == 200
        assert body["access_key"].startswith("AKIA")
        assert "secret_key" in body
        iam_principal = deployment.metadata.iam_principal_for("alice@uchicago.edu")
        assert iam_principal == "octopus-alice.uchicago.edu"
        assert deployment.iam.has_identity(iam_principal)

    def test_create_key_twice_issues_new_key_same_identity(self, deployment, token):
        _, first = deployment.service.handle("GET", "/create_key", token=token)
        _, second = deployment.service.handle("GET", "/create_key", token=token)
        assert first["access_key"] != second["access_key"]
        assert first["username"] == second["username"]

    def test_credential_broker_round_trip(self, deployment):
        creds = deployment.service.create_key("carol@lbl.gov")
        resolved = deployment.service.credentials.authenticate_key(
            creds.access_key_id, creds.secret_access_key
        )
        assert resolved == "carol@lbl.gov"

    def test_revoke_keys(self, deployment):
        broker = deployment.service.credentials
        broker.create_key("dave@ornl.gov")
        broker.create_key("dave@ornl.gov")
        assert broker.revoke_keys("dave@ornl.gov") == 2
        assert broker.revoke_keys("ghost@nowhere") == 0


class TestTriggerRoutes:
    def register_noop_function(self, deployment, name="action"):
        deployment.triggers.register_function(
            FunctionDefinition(name=name, handler=lambda e, c: len(e["records"]))
        )

    def test_create_list_update_delete_trigger(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        self.register_noop_function(deployment)
        status, body = deployment.service.handle(
            "PUT", "/trigger", token=token,
            body={"topic": "t", "function": "action", "batch_size": 10},
        )
        assert status == 200
        trigger_id = body["trigger_id"]
        status, body = deployment.service.handle("GET", "/triggers", token=token)
        assert len(body["triggers"]) == 1
        status, body = deployment.service.handle(
            "POST", f"/trigger/{trigger_id}", token=token, body={"batch_size": 500},
        )
        assert status == 200 and body["batch_size"] == 500
        status, body = deployment.service.handle(
            "DELETE", f"/trigger/{trigger_id}", token=token,
        )
        assert status == 200
        status, body = deployment.service.handle("GET", "/triggers", token=token)
        assert body["triggers"] == []

    def test_trigger_requires_existing_topic_and_function(self, deployment, token):
        self.register_noop_function(deployment)
        status, _ = deployment.service.handle(
            "PUT", "/trigger", token=token, body={"topic": "ghost", "function": "action"},
        )
        assert status == 404
        deployment.service.handle("PUT", "/topic/t", token=token)
        status, _ = deployment.service.handle(
            "PUT", "/trigger", token=token, body={"topic": "t", "function": "ghost"},
        )
        assert status == 404

    def test_trigger_requires_topic_access(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        self.register_noop_function(deployment)
        bob_token = deployment.auth.login("bob", "anl.gov", ["octopus:all"]).token
        status, _ = deployment.service.handle(
            "PUT", "/trigger", token=bob_token, body={"topic": "t", "function": "action"},
        )
        assert status == 403

    def test_invalid_filter_pattern_rejected(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        self.register_noop_function(deployment)
        status, _ = deployment.service.handle(
            "PUT", "/trigger", token=token,
            body={"topic": "t", "function": "action",
                  "filter_pattern": {"a": "not-a-list"}},
        )
        assert status == 400

    def test_update_with_unknown_setting_rejected(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        self.register_noop_function(deployment)
        _, body = deployment.service.handle(
            "PUT", "/trigger", token=token, body={"topic": "t", "function": "action"},
        )
        status, _ = deployment.service.handle(
            "POST", f"/trigger/{body['trigger_id']}", token=token, body={"memory": 512},
        )
        assert status == 400

    def test_trigger_creates_iam_role_and_log_group(self, deployment, token):
        deployment.service.handle("PUT", "/topic/t", token=token)
        self.register_noop_function(deployment)
        _, body = deployment.service.handle(
            "PUT", "/trigger", token=token, body={"topic": "t", "function": "action"},
        )
        assert deployment.iam.has_identity(body["iam_role"])
        assert body["log_group"] in [f"/aws/lambda/action"]
        assert deployment.metadata.list_triggers() == [body["trigger_id"]]
